// Package alloc implements the Computing Resource Allocation (CRA) stage
// of TSAJS: the closed-form Karush–Kuhn–Tucker optimum of Eq. (22) and the
// resulting optimal objective Λ(X, F*) of Eq. (23).
//
// For a fixed offloading decision, the CRA problem
//
//	min Σ_s Σ_{u∈U_s} η_u / f_us   s.t.  Σ_u f_us ≤ f_s,  f_us > 0
//
// is convex (diagonal positive-definite Hessian), and its optimum allocates
// each server's capacity proportionally to √η_u:
//
//	f*_us = f_s·√η_u / Σ_{v∈U_s} √η_v,
//	Λ(X,F*) = Σ_s (Σ_{u∈U_s} √η_u)² / f_s.
package alloc

import (
	"fmt"

	"github.com/tsajs/tsajs/internal/assign"
	"github.com/tsajs/tsajs/internal/scenario"
)

// Allocation is a computing-resource allocation F: FUs[u] is the rate
// (cycles/s) granted to user u by its assigned server, 0 for local users.
type Allocation struct {
	FUs []float64
}

// KKT computes the optimal allocation F* for decision a under scenario sc,
// together with Λ(X, F*).
func KKT(sc *scenario.Scenario, a *assign.Assignment) (Allocation, float64) {
	fus := make([]float64, sc.U())
	lambda := kktInto(sc, a, fus, make([]float64, sc.S()))
	return Allocation{FUs: fus}, lambda
}

// Lambda computes only Λ(X, F*) (Eq. 23) without materializing the
// allocation. This is the hot path of every utility evaluation.
func Lambda(sc *scenario.Scenario, a *assign.Assignment) float64 {
	var stack [64]float64
	if sc.S() <= len(stack) {
		return LambdaInto(sc, a, stack[:sc.S()])
	}
	return LambdaInto(sc, a, make([]float64, sc.S()))
}

// LambdaInto computes Λ(X, F*) using the caller-provided per-server
// scratch buffer (len ≥ S; contents are overwritten). Callers evaluating
// in a loop pass a reused buffer so the computation is allocation-free at
// any fleet size.
func LambdaInto(sc *scenario.Scenario, a *assign.Assignment, sums []float64) float64 {
	return kktInto(sc, a, nil, sums[:sc.S()])
}

// kktInto computes Λ and, when fus is non-nil, fills the per-user rates.
// It iterates users rather than the S×N slot matrix so the cost scales
// with the offloaded population, not the network size, and reads the
// scenario's flat √η and f_s tables instead of copying Derived structs.
func kktInto(sc *scenario.Scenario, a *assign.Assignment, fus, sums []float64) float64 {
	sqrtEta := sc.SqrtEtas()
	serverF := sc.ServerFreqs()
	for i := range sums {
		sums[i] = 0
	}
	for u := 0; u < sc.U(); u++ {
		if s, _ := a.SlotOf(u); s != assign.Local {
			sums[s] += sqrtEta[u]
		}
	}
	total := 0.0
	for s, sumSqrt := range sums {
		if sumSqrt > 0 {
			total += sumSqrt * sumSqrt / serverF[s]
		}
	}
	if fus != nil {
		for u := 0; u < sc.U(); u++ {
			if s, _ := a.SlotOf(u); s != assign.Local {
				fus[u] = serverF[s] * sqrtEta[u] / sums[s]
			}
		}
	}
	return total
}

// Objective evaluates the CRA objective Σ η_u / f_us for an arbitrary
// feasible allocation, used by tests and the equal-split ablation.
func Objective(sc *scenario.Scenario, a *assign.Assignment, f Allocation) (float64, error) {
	if len(f.FUs) != sc.U() {
		return 0, fmt.Errorf("alloc: allocation covers %d users, want %d", len(f.FUs), sc.U())
	}
	total := 0.0
	for u := 0; u < sc.U(); u++ {
		if a.IsLocal(u) {
			continue
		}
		if f.FUs[u] <= 0 {
			return 0, fmt.Errorf("alloc: user %d offloads but has rate %g", u, f.FUs[u])
		}
		total += sc.Derived(u).Eta / f.FUs[u]
	}
	return total, nil
}

// Validate checks allocation feasibility against constraints (12e)/(12f):
// positive rates for offloaded users, zero for local users, and per-server
// capacity respected up to a small tolerance.
func Validate(sc *scenario.Scenario, a *assign.Assignment, f Allocation) error {
	if len(f.FUs) != sc.U() {
		return fmt.Errorf("alloc: allocation covers %d users, want %d", len(f.FUs), sc.U())
	}
	used := make([]float64, sc.S())
	for u := 0; u < sc.U(); u++ {
		s, _ := a.SlotOf(u)
		if s == assign.Local {
			if f.FUs[u] != 0 {
				return fmt.Errorf("alloc: local user %d has rate %g", u, f.FUs[u])
			}
			continue
		}
		if f.FUs[u] <= 0 {
			return fmt.Errorf("alloc: offloaded user %d has non-positive rate %g", u, f.FUs[u])
		}
		used[s] += f.FUs[u]
	}
	const tol = 1e-6
	for s := range used {
		cap := sc.Servers[s].FHz
		if used[s] > cap*(1+tol) {
			return fmt.Errorf("alloc: server %d allocated %g Hz, capacity %g Hz", s, used[s], cap)
		}
	}
	return nil
}

// EqualSplit divides each server's capacity evenly among its users. It is
// the baseline allocation for the KKT-vs-naive ablation; it is feasible but
// suboptimal whenever users have unequal η.
func EqualSplit(sc *scenario.Scenario, a *assign.Assignment) Allocation {
	fus := make([]float64, sc.U())
	for s := 0; s < sc.S(); s++ {
		count := 0
		for j := 0; j < a.Channels(); j++ {
			if a.Occupant(s, j) != assign.Local {
				count++
			}
		}
		if count == 0 {
			continue
		}
		share := sc.Servers[s].FHz / float64(count)
		for j := 0; j < a.Channels(); j++ {
			if u := a.Occupant(s, j); u != assign.Local {
				fus[u] = share
			}
		}
	}
	return Allocation{FUs: fus}
}
