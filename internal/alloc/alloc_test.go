package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tsajs/tsajs/internal/assign"
	"github.com/tsajs/tsajs/internal/scenario"
	"github.com/tsajs/tsajs/internal/simrand"
)

func buildScenario(t *testing.T, users int) *scenario.Scenario {
	t.Helper()
	p := scenario.DefaultParams()
	p.NumUsers = users
	p.NumServers = 3
	p.NumChannels = 4
	p.Seed = 17
	sc, err := scenario.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func offloadSome(t *testing.T, sc *scenario.Scenario, slots map[int][2]int) *assign.Assignment {
	t.Helper()
	a, err := assign.New(sc.U(), sc.S(), sc.N())
	if err != nil {
		t.Fatal(err)
	}
	for u, slot := range slots {
		if err := a.Offload(u, slot[0], slot[1]); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestKKTClosedForm(t *testing.T) {
	sc := buildScenario(t, 6)
	a := offloadSome(t, sc, map[int][2]int{
		0: {0, 0}, 1: {0, 1}, 2: {0, 2}, // three users on server 0
		3: {1, 0}, // one user on server 1
	})
	f, lambda := KKT(sc, a)

	// Server 0: f_us = f_s * sqrt(eta_u) / sum(sqrt(eta)).
	sum := sc.Derived(0).SqrtEta + sc.Derived(1).SqrtEta + sc.Derived(2).SqrtEta
	for _, u := range []int{0, 1, 2} {
		want := sc.Servers[0].FHz * sc.Derived(u).SqrtEta / sum
		if math.Abs(f.FUs[u]-want) > 1e-6*want {
			t.Errorf("f[%d] = %g, want %g", u, f.FUs[u], want)
		}
	}
	// Lone user gets the whole server.
	if math.Abs(f.FUs[3]-sc.Servers[1].FHz) > 1e-3 {
		t.Errorf("lone user rate = %g, want full capacity %g", f.FUs[3], sc.Servers[1].FHz)
	}
	// Local users get zero.
	for _, u := range []int{4, 5} {
		if f.FUs[u] != 0 {
			t.Errorf("local user %d has rate %g", u, f.FUs[u])
		}
	}
	// Lambda matches Eq. (23).
	want := sum*sum/sc.Servers[0].FHz + sc.Derived(3).Eta/sc.Servers[1].FHz
	if math.Abs(lambda-want) > 1e-9*want {
		t.Errorf("Lambda = %g, want %g", lambda, want)
	}
	// Lambda shortcut agrees.
	if got := Lambda(sc, a); math.Abs(got-lambda) > 1e-12*lambda {
		t.Errorf("Lambda() = %g, KKT lambda = %g", got, lambda)
	}
}

func TestKKTAllLocal(t *testing.T) {
	sc := buildScenario(t, 3)
	a := offloadSome(t, sc, nil)
	f, lambda := KKT(sc, a)
	if lambda != 0 {
		t.Errorf("Lambda of all-local = %g", lambda)
	}
	for u, v := range f.FUs {
		if v != 0 {
			t.Errorf("user %d allocated %g with nobody offloaded", u, v)
		}
	}
}

func TestKKTSaturatesCapacity(t *testing.T) {
	sc := buildScenario(t, 8)
	a := offloadSome(t, sc, map[int][2]int{
		0: {0, 0}, 1: {0, 1}, 2: {0, 2}, 3: {0, 3},
	})
	f, _ := KKT(sc, a)
	total := f.FUs[0] + f.FUs[1] + f.FUs[2] + f.FUs[3]
	if math.Abs(total-sc.Servers[0].FHz) > 1e-3 {
		t.Errorf("KKT allocated %g of %g Hz — the optimum uses all capacity", total, sc.Servers[0].FHz)
	}
	if err := Validate(sc, a, f); err != nil {
		t.Fatal(err)
	}
}

func TestKKTOptimalityAgainstRandomFeasible(t *testing.T) {
	// Property: no random feasible allocation beats the KKT closed form
	// on the CRA objective Σ η_u / f_us.
	sc := buildScenario(t, 6)
	a := offloadSome(t, sc, map[int][2]int{0: {0, 0}, 1: {0, 1}, 2: {0, 2}, 3: {2, 0}})
	f, _ := KKT(sc, a)
	kktObj, err := Objective(sc, a, f)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	for trial := 0; trial < 500; trial++ {
		// Random positive weights, normalized per server.
		weights := make([]float64, sc.U())
		sums := make([]float64, sc.S())
		for u := 0; u < sc.U(); u++ {
			if s, _ := a.SlotOf(u); s != assign.Local {
				weights[u] = rng.Float64() + 1e-3
				sums[s] += weights[u]
			}
		}
		rand := Allocation{FUs: make([]float64, sc.U())}
		for u := 0; u < sc.U(); u++ {
			if s, _ := a.SlotOf(u); s != assign.Local {
				rand.FUs[u] = sc.Servers[s].FHz * weights[u] / sums[s]
			}
		}
		if err := Validate(sc, a, rand); err != nil {
			t.Fatalf("trial %d: random allocation infeasible: %v", trial, err)
		}
		obj, err := Objective(sc, a, rand)
		if err != nil {
			t.Fatal(err)
		}
		if obj < kktObj-1e-9*kktObj {
			t.Fatalf("trial %d: random allocation %.9g beats KKT %.9g", trial, obj, kktObj)
		}
	}
}

func TestKKTOptimalityProperty(t *testing.T) {
	// testing/quick variant: arbitrary assignment patterns, arbitrary
	// perturbations of the KKT point stay no better.
	sc := buildScenario(t, 5)
	prop := func(seed uint64) bool {
		rng := simrand.New(seed)
		a, err := assign.New(sc.U(), sc.S(), sc.N())
		if err != nil {
			return false
		}
		for u := 0; u < sc.U(); u++ {
			if rng.Float64() < 0.6 {
				s := rng.Intn(sc.S())
				if j := a.FreeChannel(s, rng.Intn(sc.N())); j != assign.Local {
					if err := a.Offload(u, s, j); err != nil {
						return false
					}
				}
			}
		}
		f, _ := KKT(sc, a)
		if a.Offloaded() == 0 {
			return true
		}
		base, err := Objective(sc, a, f)
		if err != nil {
			return false
		}
		// Perturb within each server: shift a fraction of one user's
		// rate to another user on the same server.
		pert := Allocation{FUs: append([]float64(nil), f.FUs...)}
		for s := 0; s < sc.S(); s++ {
			users := a.UsersOf(s, nil)
			if len(users) < 2 {
				continue
			}
			from, to := users[0], users[1]
			delta := pert.FUs[from] * 0.3 * rng.Float64()
			pert.FUs[from] -= delta
			pert.FUs[to] += delta
		}
		obj, err := Objective(sc, a, pert)
		if err != nil {
			return false
		}
		return obj >= base-1e-9*math.Abs(base)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEqualSplitFeasibleButWeaker(t *testing.T) {
	sc := buildScenario(t, 6)
	// Give the users unequal eta by varying lambda, so equal split is
	// strictly suboptimal.
	for i := range sc.Users {
		sc.Users[i].Lambda = 0.2 + 0.15*float64(i)
		if sc.Users[i].Lambda > 1 {
			sc.Users[i].Lambda = 1
		}
	}
	if err := sc.Finalize(); err != nil {
		t.Fatal(err)
	}
	a := offloadSome(t, sc, map[int][2]int{0: {0, 0}, 1: {0, 1}, 2: {0, 2}})
	eq := EqualSplit(sc, a)
	if err := Validate(sc, a, eq); err != nil {
		t.Fatal(err)
	}
	f, _ := KKT(sc, a)
	kktObj, err := Objective(sc, a, f)
	if err != nil {
		t.Fatal(err)
	}
	eqObj, err := Objective(sc, a, eq)
	if err != nil {
		t.Fatal(err)
	}
	if eqObj < kktObj {
		t.Errorf("equal split %.9g beats KKT %.9g", eqObj, kktObj)
	}
	if math.Abs(eqObj-kktObj) < 1e-12 {
		t.Error("equal split ties KKT despite unequal eta — suspicious")
	}
}

func TestValidateErrors(t *testing.T) {
	sc := buildScenario(t, 4)
	a := offloadSome(t, sc, map[int][2]int{0: {0, 0}})
	tests := []struct {
		name string
		f    Allocation
	}{
		{name: "wrong length", f: Allocation{FUs: make([]float64, 2)}},
		{name: "local user with rate", f: Allocation{FUs: []float64{1e9, 5, 0, 0}}},
		{name: "offloaded user without rate", f: Allocation{FUs: []float64{0, 0, 0, 0}}},
		{name: "over capacity", f: Allocation{FUs: []float64{sc.Servers[0].FHz * 2, 0, 0, 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Validate(sc, a, tt.f); err == nil {
				t.Error("invalid allocation accepted")
			}
		})
	}
	f, _ := KKT(sc, a)
	if err := Validate(sc, a, f); err != nil {
		t.Errorf("KKT allocation rejected: %v", err)
	}
}

func TestObjectiveErrors(t *testing.T) {
	sc := buildScenario(t, 4)
	a := offloadSome(t, sc, map[int][2]int{0: {0, 0}})
	if _, err := Objective(sc, a, Allocation{FUs: make([]float64, 1)}); err == nil {
		t.Error("wrong-length allocation accepted")
	}
	if _, err := Objective(sc, a, Allocation{FUs: make([]float64, 4)}); err == nil {
		t.Error("zero rate for offloaded user accepted")
	}
}
