// Package units provides the unit conventions and conversions used across
// the TSAJS simulator.
//
// All internal computation is carried out in SI base units:
//
//   - power in Watts,
//   - bandwidth and CPU frequency in Hertz (cycles per second),
//   - data sizes in bits,
//   - computation amounts in CPU cycles,
//   - time in seconds,
//   - energy in Joules,
//   - distances in kilometres (the path-loss model is specified in km).
//
// Radio parameters are commonly quoted in logarithmic units (dB, dBm); this
// package holds the conversions between the logarithmic and linear domains.
package units

import "math"

// Common magnitude constants. These exist so that scenario definitions read
// like the paper ("20 MHz", "420 KB", "1000 Megacycles") instead of raw
// exponents.
const (
	// Hz-based magnitudes (bandwidth, CPU frequency).
	Hz  = 1.0
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9

	// Bit-based magnitudes (task input sizes). The paper quotes task sizes
	// in kilobytes; KB here is 1024 bytes of 8 bits, matching the common
	// convention for the 420 KB workload.
	Bit = 1.0
	KB  = 8 * 1024.0
	MB  = 8 * 1024.0 * 1024.0

	// Cycle-based magnitudes (task computational loads).
	Cycle     = 1.0
	Megacycle = 1e6
	Gigacycle = 1e9
)

// DBToLinear converts a ratio expressed in decibels to a linear ratio.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear ratio to decibels. The ratio must be
// positive; non-positive inputs yield -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// DBmToWatts converts a power level in dBm to Watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts a power level in Watts to dBm. Non-positive power
// yields -Inf.
func WattsToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(w) + 30
}
