package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBToLinear(t *testing.T) {
	tests := []struct {
		name string
		db   float64
		want float64
	}{
		{name: "zero dB is unity", db: 0, want: 1},
		{name: "3 dB is about double", db: 3.0102999566, want: 2},
		{name: "10 dB is ten", db: 10, want: 10},
		{name: "20 dB is hundred", db: 20, want: 100},
		{name: "-10 dB is a tenth", db: -10, want: 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DBToLinear(tt.db); math.Abs(got-tt.want) > 1e-9*tt.want {
				t.Errorf("DBToLinear(%g) = %g, want %g", tt.db, got, tt.want)
			}
		})
	}
}

func TestLinearToDB(t *testing.T) {
	tests := []struct {
		name string
		lin  float64
		want float64
	}{
		{name: "unity is zero dB", lin: 1, want: 0},
		{name: "ten is 10 dB", lin: 10, want: 10},
		{name: "thousand is 30 dB", lin: 1000, want: 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LinearToDB(tt.lin); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("LinearToDB(%g) = %g, want %g", tt.lin, got, tt.want)
			}
		})
	}
}

func TestLinearToDBNonPositive(t *testing.T) {
	for _, lin := range []float64{0, -1, -1e9} {
		if got := LinearToDB(lin); !math.IsInf(got, -1) {
			t.Errorf("LinearToDB(%g) = %g, want -Inf", lin, got)
		}
	}
}

func TestDBmToWatts(t *testing.T) {
	tests := []struct {
		name string
		dbm  float64
		want float64
	}{
		{name: "0 dBm is 1 mW", dbm: 0, want: 1e-3},
		{name: "30 dBm is 1 W", dbm: 30, want: 1},
		{name: "10 dBm is 10 mW (paper tx power)", dbm: 10, want: 1e-2},
		{name: "-100 dBm is 0.1 pW (paper noise)", dbm: -100, want: 1e-13},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DBmToWatts(tt.dbm); math.Abs(got-tt.want) > 1e-9*tt.want {
				t.Errorf("DBmToWatts(%g) = %g, want %g", tt.dbm, got, tt.want)
			}
		})
	}
}

func TestWattsToDBmNonPositive(t *testing.T) {
	if got := WattsToDBm(0); !math.IsInf(got, -1) {
		t.Errorf("WattsToDBm(0) = %g, want -Inf", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	prop := func(db float64) bool {
		db = math.Mod(db, 200) // keep within representable dynamic range
		back := LinearToDB(DBToLinear(db))
		return math.Abs(back-db) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	prop := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200)
		back := WattsToDBm(DBmToWatts(dbm))
		return math.Abs(back-dbm) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMagnitudeConstants(t *testing.T) {
	if KB != 8192 {
		t.Errorf("KB = %g bits, want 8192", float64(KB))
	}
	if MB != 8192*1024 {
		t.Errorf("MB = %g bits, want %g", float64(MB), 8192.0*1024)
	}
	if GHz != 1e9 || MHz != 1e6 || KHz != 1e3 {
		t.Error("Hz magnitude constants are inconsistent")
	}
	if Megacycle != 1e6 || Gigacycle != 1e9 {
		t.Error("cycle magnitude constants are inconsistent")
	}
}
