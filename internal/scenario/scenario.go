// Package scenario defines the complete static description of a TSAJS
// problem instance: the multi-cell network, the user population with their
// tasks and preferences, the MEC servers, and the wireless channel state.
//
// A Scenario is immutable once built; schedulers and evaluators treat it as
// read-only shared state, which makes concurrent trials safe without locks.
package scenario

import (
	"errors"
	"fmt"
	"math"

	"github.com/tsajs/tsajs/internal/geom"
	"github.com/tsajs/tsajs/internal/radio"
	"github.com/tsajs/tsajs/internal/simrand"
	"github.com/tsajs/tsajs/internal/task"
	"github.com/tsajs/tsajs/internal/units"
)

// User is one mobile user: position, task, device capability, and the
// preference weights of Eq. (10).
type User struct {
	Pos geom.Point `json:"pos"`
	// Task is the atomic computation assignment T_u.
	Task task.Task `json:"task"`
	// FLocalHz is f_u^local, the device CPU frequency in cycles/s.
	FLocalHz float64 `json:"fLocalHz"`
	// TxPowerW is p_u, the fixed uplink transmit power in Watts.
	TxPowerW float64 `json:"txPowerW"`
	// Kappa is the chip-dependent energy coefficient κ of Eq. (1).
	Kappa float64 `json:"kappa"`
	// BetaTime and BetaEnergy are β_u^time and β_u^energy; they must be
	// in [0,1] and sum to 1.
	BetaTime   float64 `json:"betaTime"`
	BetaEnergy float64 `json:"betaEnergy"`
	// Lambda is λ_u ∈ (0,1], the provider's preference weight.
	Lambda float64 `json:"lambda"`
}

// Validate checks a user's parameters against the model's domain.
func (u User) Validate() error {
	if err := u.Task.Validate(); err != nil {
		return err
	}
	switch {
	case u.FLocalHz <= 0:
		return fmt.Errorf("scenario: user local CPU frequency must be positive, got %g Hz", u.FLocalHz)
	case u.TxPowerW <= 0:
		return fmt.Errorf("scenario: user transmit power must be positive, got %g W", u.TxPowerW)
	case u.Kappa <= 0:
		return fmt.Errorf("scenario: user kappa must be positive, got %g", u.Kappa)
	case u.BetaTime < 0 || u.BetaTime > 1:
		return fmt.Errorf("scenario: beta_time must be in [0,1], got %g", u.BetaTime)
	case u.BetaEnergy < 0 || u.BetaEnergy > 1:
		return fmt.Errorf("scenario: beta_energy must be in [0,1], got %g", u.BetaEnergy)
	case math.Abs(u.BetaTime+u.BetaEnergy-1) > 1e-9:
		return fmt.Errorf("scenario: beta_time + beta_energy must equal 1, got %g", u.BetaTime+u.BetaEnergy)
	case u.Lambda <= 0 || u.Lambda > 1:
		return fmt.Errorf("scenario: lambda must be in (0,1], got %g", u.Lambda)
	}
	return nil
}

// Server is one MEC server co-located with a base station.
type Server struct {
	Pos geom.Point `json:"pos"`
	// FHz is f_s, the server's total computation rate in cycles/s.
	FHz float64 `json:"fHz"`
}

// Validate checks a server's parameters.
func (s Server) Validate() error {
	if s.FHz <= 0 {
		return fmt.Errorf("scenario: server CPU frequency must be positive, got %g Hz", s.FHz)
	}
	return nil
}

// Derived holds the per-user quantities that the objective reuses on every
// evaluation: local cost and the φ_u, ψ_u, η_u coefficients of Eq. (19).
type Derived struct {
	// TLocalS is t_u^local in seconds.
	TLocalS float64
	// ELocalJ is E_u^local in Joules (Eq. 1).
	ELocalJ float64
	// Phi is φ_u = λ_u·β_u^time·d_u / (t_u^local·W).
	Phi float64
	// Psi is ψ_u = λ_u·β_u^energy·d_u / (E_u^local·W).
	Psi float64
	// Eta is η_u = λ_u·β_u^time·f_u^local.
	Eta float64
	// SqrtEta caches √η_u for the KKT allocation (Eq. 22).
	SqrtEta float64
	// TDownS is the fixed downlink return delay o_u/R_down (zero in the
	// paper's base model).
	TDownS float64
	// GainConst is the constant utility term a user contributes when
	// offloaded: λ_u·(β_u^time + β_u^energy) (first term of Eq. 24),
	// minus the decision-independent downlink penalty
	// λ_u·β_u^time·TDownS/t_u^local when the downlink model is active.
	GainConst float64
}

// Scenario is a complete, validated problem instance.
type Scenario struct {
	Users   []User              `json:"users"`
	Servers []Server            `json:"servers"`
	Gain    radio.GainTensor    `json:"gain"`
	Model   radio.PathLossModel `json:"model"`

	// NumChannels is N, the number of orthogonal subchannels per cell.
	NumChannels int `json:"numChannels"`
	// BandwidthHz is the total uplink band B; each subchannel has width
	// W = B/N.
	BandwidthHz float64 `json:"bandwidthHz"`
	// NoiseW is the background noise power σ² per subchannel, in Watts.
	NoiseW float64 `json:"noiseW"`
	// DownlinkRateBps is the fixed downlink data rate used to return task
	// results. Zero (the paper's base model) ignores downlink delay; a
	// positive value activates the paper's Section III-A2 adaptation,
	// charging each offloaded task OutputBits/DownlinkRateBps seconds.
	DownlinkRateBps float64 `json:"downlinkRateBps,omitempty"`
	// Seed is the RNG seed the instance was drawn from (for provenance).
	Seed uint64 `json:"seed"`

	derived []Derived

	// Flat per-user tables rebuilt by Finalize. The objective kernels and
	// the CRA allocator index these instead of copying Derived structs or
	// re-multiplying p_u·G_us^j per interference term.
	recvPower  []float64 // P[(u·S+s)·N+j] = p_u·G_us^j
	commWeight []float64 // φ_u + ψ_u·p_u
	gainConst  []float64 // Derived.GainConst
	sqrtEta    []float64 // Derived.SqrtEta
	txPowers   []float64 // p_u
	serverFreq []float64 // f_s
}

// U returns the number of users.
func (sc *Scenario) U() int { return len(sc.Users) }

// S returns the number of servers.
func (sc *Scenario) S() int { return len(sc.Servers) }

// N returns the number of subchannels per cell.
func (sc *Scenario) N() int { return sc.NumChannels }

// SubchannelHz returns W = B/N.
func (sc *Scenario) SubchannelHz() float64 {
	return sc.BandwidthHz / float64(sc.NumChannels)
}

// Derived returns the precomputed per-user coefficients. Finalize must have
// succeeded first (Build and UnmarshalJSON call it).
func (sc *Scenario) Derived(u int) Derived { return sc.derived[u] }

// TxPowers returns the per-user transmit power vector. The slice is shared
// scenario state and must be treated as read-only.
func (sc *Scenario) TxPowers() []float64 { return sc.txPowers }

// RecvPower returns the flat received-power table precomputed by Finalize:
// entry (u·S()+s)·N()+j holds p_u·G_us^j, the numerator of Eq. (3) and the
// per-interferer term of its denominator. User-major layout, identical
// stride arithmetic to Gain.Data(). Shared state; read-only.
func (sc *Scenario) RecvPower() []float64 { return sc.recvPower }

// RecvPowerAt returns p_u·G_us^j for one (user, server, subchannel) triple.
func (sc *Scenario) RecvPowerAt(u, s, j int) float64 {
	return sc.recvPower[(u*len(sc.Servers)+s)*sc.NumChannels+j]
}

// CommWeights returns the per-user communication-cost weights
// (φ_u + ψ_u·p_u), the numerator of each Γ(X) term in Eq. (19). Shared
// state; read-only.
func (sc *Scenario) CommWeights() []float64 { return sc.commWeight }

// GainConsts returns the per-user constant utility contribution of an
// offloaded user (Derived.GainConst) as a flat vector. Shared state;
// read-only.
func (sc *Scenario) GainConsts() []float64 { return sc.gainConst }

// SqrtEtas returns the per-user √η_u vector used by the KKT allocation
// (Eq. 22). Shared state; read-only.
func (sc *Scenario) SqrtEtas() []float64 { return sc.sqrtEta }

// ServerFreqs returns the per-server capacity vector f_s. Shared state;
// read-only.
func (sc *Scenario) ServerFreqs() []float64 { return sc.serverFreq }

// Validate checks the full instance for consistency.
func (sc *Scenario) Validate() error {
	if len(sc.Users) == 0 {
		return errors.New("scenario: no users")
	}
	if len(sc.Servers) == 0 {
		return errors.New("scenario: no servers")
	}
	if sc.NumChannels <= 0 {
		return fmt.Errorf("scenario: subchannel count must be positive, got %d", sc.NumChannels)
	}
	if sc.BandwidthHz <= 0 {
		return fmt.Errorf("scenario: bandwidth must be positive, got %g Hz", sc.BandwidthHz)
	}
	if sc.NoiseW <= 0 {
		return fmt.Errorf("scenario: noise power must be positive, got %g W", sc.NoiseW)
	}
	if sc.DownlinkRateBps < 0 {
		return fmt.Errorf("scenario: downlink rate must be non-negative, got %g bps", sc.DownlinkRateBps)
	}
	for i, u := range sc.Users {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("user %d: %w", i, err)
		}
	}
	for i, s := range sc.Servers {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("server %d: %w", i, err)
		}
	}
	if err := sc.Gain.Validate(); err != nil {
		return err
	}
	if sc.Gain.Users() != len(sc.Users) || sc.Gain.Sites() != len(sc.Servers) || sc.Gain.Channels() != sc.NumChannels {
		return fmt.Errorf("scenario: gain tensor is %dx%dx%d, want %dx%dx%d",
			sc.Gain.Users(), sc.Gain.Sites(), sc.Gain.Channels(),
			len(sc.Users), len(sc.Servers), sc.NumChannels)
	}
	return nil
}

// Finalize validates the scenario and computes the derived per-user
// coefficients. It must be called before the scenario is handed to an
// evaluator or scheduler.
func (sc *Scenario) Finalize() error {
	if err := sc.Validate(); err != nil {
		return err
	}
	w := sc.SubchannelHz()
	// The derived tables are rebuilt in full on every Finalize, so existing
	// capacity can be recycled: a coordinator solver worker that reuses one
	// Scenario value across epochs re-finalizes without allocating once its
	// buffers have grown to the epoch's user count.
	sc.derived = growDerived(sc.derived, len(sc.Users))
	sc.commWeight = growF64(sc.commWeight, len(sc.Users))
	sc.gainConst = growF64(sc.gainConst, len(sc.Users))
	sc.sqrtEta = growF64(sc.sqrtEta, len(sc.Users))
	sc.txPowers = growF64(sc.txPowers, len(sc.Users))
	for i, u := range sc.Users {
		local, err := task.Local(u.Task, u.FLocalHz, u.Kappa)
		if err != nil {
			return fmt.Errorf("user %d: %w", i, err)
		}
		eta := u.Lambda * u.BetaTime * u.FLocalHz
		tDown := 0.0
		if sc.DownlinkRateBps > 0 {
			tDown = u.Task.OutputBits / sc.DownlinkRateBps
		}
		sc.derived[i] = Derived{
			TLocalS: local.TimeS,
			ELocalJ: local.EnergyJ,
			Phi:     u.Lambda * u.BetaTime * u.Task.DataBits / (local.TimeS * w),
			Psi:     u.Lambda * u.BetaEnergy * u.Task.DataBits / (local.EnergyJ * w),
			Eta:     eta,
			SqrtEta: math.Sqrt(eta),
			TDownS:  tDown,
			GainConst: u.Lambda*(u.BetaTime+u.BetaEnergy) -
				u.Lambda*u.BetaTime*tDown/local.TimeS,
		}
		sc.commWeight[i] = sc.derived[i].Phi + sc.derived[i].Psi*u.TxPowerW
		sc.gainConst[i] = sc.derived[i].GainConst
		sc.sqrtEta[i] = sc.derived[i].SqrtEta
		sc.txPowers[i] = u.TxPowerW
	}
	sc.serverFreq = growF64(sc.serverFreq, len(sc.Servers))
	for s := range sc.Servers {
		sc.serverFreq[s] = sc.Servers[s].FHz
	}
	// Received-power table: one contiguous user-major block mirroring the
	// gain tensor's layout, so kernels share the same stride arithmetic.
	gains := sc.Gain.Data()
	sc.recvPower = growF64(sc.recvPower, len(gains))
	stride := len(sc.Servers) * sc.NumChannels
	for u := range sc.Users {
		p := sc.Users[u].TxPowerW
		row := gains[u*stride : (u+1)*stride]
		out := sc.recvPower[u*stride : (u+1)*stride]
		for i, g := range row {
			out[i] = p * g
		}
	}
	return nil
}

// growF64 returns a length-n slice, reusing s's storage when its capacity
// suffices. Callers overwrite every element, so stale contents never leak.
func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// growDerived is growF64 for the per-user Derived table.
func growDerived(s []Derived, n int) []Derived {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]Derived, n)
}

// Params configures Build. The zero value is not valid; start from
// DefaultParams, which reproduces the paper's evaluation defaults
// (Section V): S=9 hexagonal cells 1 km apart, N=3 subchannels, B=20 MHz,
// σ²=−100 dBm, P_u=10 dBm, f_s=20 GHz, f_u=1 GHz, κ=5·10⁻²⁷, d_u=420 KB,
// β^time=β^energy=0.5, λ=1.
type Params struct {
	NumUsers    int `json:"numUsers"`
	NumServers  int `json:"numServers"`
	NumChannels int `json:"numChannels"`

	BandwidthHz float64 `json:"bandwidthHz"`
	NoiseDBm    float64 `json:"noiseDBm"`
	TxPowerDBm  float64 `json:"txPowerDBm"`
	// DownlinkRateBps activates the downlink return-delay extension when
	// positive (0, the default, is the paper's base model).
	DownlinkRateBps float64 `json:"downlinkRateBps,omitempty"`

	ServerFreqHz float64 `json:"serverFreqHz"`
	UserFreqHz   float64 `json:"userFreqHz"`
	Kappa        float64 `json:"kappa"`

	Workload task.Generator `json:"workload"`

	BetaTime float64 `json:"betaTime"`
	Lambda   float64 `json:"lambda"`

	InterSiteKm float64             `json:"interSiteKm"`
	PathLoss    radio.PathLossModel `json:"pathLoss"`

	Seed uint64 `json:"seed"`
}

// DefaultParams returns the paper's evaluation defaults.
func DefaultParams() Params {
	return Params{
		NumUsers:     30,
		NumServers:   9,
		NumChannels:  3,
		BandwidthHz:  20 * units.MHz,
		NoiseDBm:     -100,
		TxPowerDBm:   10,
		ServerFreqHz: 20 * units.GHz,
		UserFreqHz:   1 * units.GHz,
		Kappa:        5e-27,
		Workload: task.Generator{
			DataBits:   420 * units.KB,
			WorkCycles: 1000 * units.Megacycle,
		},
		BetaTime:    0.5,
		Lambda:      1,
		InterSiteKm: 1,
		PathLoss:    radio.DefaultPathLoss(),
		Seed:        1,
	}
}

// Validate checks the build parameters.
func (p Params) Validate() error {
	switch {
	case p.NumUsers <= 0:
		return fmt.Errorf("scenario: user count must be positive, got %d", p.NumUsers)
	case p.NumServers <= 0:
		return fmt.Errorf("scenario: server count must be positive, got %d", p.NumServers)
	case p.NumChannels <= 0:
		return fmt.Errorf("scenario: subchannel count must be positive, got %d", p.NumChannels)
	case p.BandwidthHz <= 0:
		return fmt.Errorf("scenario: bandwidth must be positive, got %g Hz", p.BandwidthHz)
	case p.ServerFreqHz <= 0:
		return fmt.Errorf("scenario: server CPU frequency must be positive, got %g Hz", p.ServerFreqHz)
	case p.UserFreqHz <= 0:
		return fmt.Errorf("scenario: user CPU frequency must be positive, got %g Hz", p.UserFreqHz)
	case p.Kappa <= 0:
		return fmt.Errorf("scenario: kappa must be positive, got %g", p.Kappa)
	case p.BetaTime < 0 || p.BetaTime > 1:
		return fmt.Errorf("scenario: beta_time must be in [0,1], got %g", p.BetaTime)
	case p.Lambda <= 0 || p.Lambda > 1:
		return fmt.Errorf("scenario: lambda must be in (0,1], got %g", p.Lambda)
	case p.InterSiteKm <= 0:
		return fmt.Errorf("scenario: inter-site distance must be positive, got %g km", p.InterSiteKm)
	case p.DownlinkRateBps < 0:
		return fmt.Errorf("scenario: downlink rate must be non-negative, got %g bps", p.DownlinkRateBps)
	}
	if err := p.Workload.Validate(); err != nil {
		return err
	}
	return p.PathLoss.Validate()
}

// Build draws a full scenario instance from the parameters: base stations
// on a hexagonal lattice, users uniformly distributed over the coverage
// area, tasks from the workload generator, and a fresh channel realization.
func Build(p Params) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := simrand.New(p.Seed)
	placementRNG := rng.Derive(0x706c6163) // "plac"
	taskRNG := rng.Derive(0x7461736b)      // "task"
	radioRNG := rng.Derive(0x72616469)     // "radi"

	sites := geom.HexLayout(p.NumServers, p.InterSiteKm)
	servers := make([]Server, p.NumServers)
	for i, pos := range sites {
		servers[i] = Server{Pos: pos, FHz: p.ServerFreqHz}
	}

	// Users are "randomly and uniformly distributed across the network's
	// coverage area": pick a uniformly random cell, then a uniform point
	// inside that cell's hexagon.
	cellR := geom.HexCircumradius(p.InterSiteKm)
	userPos := make([]geom.Point, p.NumUsers)
	for i := range userPos {
		site := sites[placementRNG.Intn(len(sites))]
		userPos[i] = site.Add(geom.RandomInHexagon(cellR, placementRNG.Float64))
	}

	tasks, err := p.Workload.Generate(p.NumUsers, taskRNG)
	if err != nil {
		return nil, err
	}

	gain, err := radio.NewGainTensor(p.PathLoss, userPos, sites, p.NumChannels, radioRNG)
	if err != nil {
		return nil, err
	}

	users := make([]User, p.NumUsers)
	for i := range users {
		users[i] = User{
			Pos:        userPos[i],
			Task:       tasks[i],
			FLocalHz:   p.UserFreqHz,
			TxPowerW:   units.DBmToWatts(p.TxPowerDBm),
			Kappa:      p.Kappa,
			BetaTime:   p.BetaTime,
			BetaEnergy: 1 - p.BetaTime,
			Lambda:     p.Lambda,
		}
	}

	sc := &Scenario{
		Users:           users,
		Servers:         servers,
		Gain:            gain,
		Model:           p.PathLoss,
		NumChannels:     p.NumChannels,
		BandwidthHz:     p.BandwidthHz,
		NoiseW:          units.DBmToWatts(p.NoiseDBm),
		DownlinkRateBps: p.DownlinkRateBps,
		Seed:            p.Seed,
	}
	if err := sc.Finalize(); err != nil {
		return nil, err
	}
	return sc, nil
}
