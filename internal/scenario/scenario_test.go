package scenario

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/tsajs/tsajs/internal/geom"
	"github.com/tsajs/tsajs/internal/task"
	"github.com/tsajs/tsajs/internal/units"
)

func buildDefault(t *testing.T, mutate func(*Params)) *Scenario {
	t.Helper()
	p := DefaultParams()
	p.NumUsers = 8
	if mutate != nil {
		mutate(&p)
	}
	sc, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.NumServers != 9 {
		t.Errorf("S = %d, want 9", p.NumServers)
	}
	if p.NumChannels != 3 {
		t.Errorf("N = %d, want 3", p.NumChannels)
	}
	if p.BandwidthHz != 20e6 {
		t.Errorf("B = %g, want 20 MHz", p.BandwidthHz)
	}
	if p.NoiseDBm != -100 {
		t.Errorf("noise = %g dBm, want -100", p.NoiseDBm)
	}
	if p.TxPowerDBm != 10 {
		t.Errorf("P_u = %g dBm, want 10", p.TxPowerDBm)
	}
	if p.ServerFreqHz != 20e9 {
		t.Errorf("f_s = %g, want 20 GHz", p.ServerFreqHz)
	}
	if p.UserFreqHz != 1e9 {
		t.Errorf("f_u = %g, want 1 GHz", p.UserFreqHz)
	}
	if p.Kappa != 5e-27 {
		t.Errorf("kappa = %g, want 5e-27", p.Kappa)
	}
	if p.Workload.DataBits != 420*units.KB {
		t.Errorf("d_u = %g, want 420 KB", p.Workload.DataBits)
	}
	if p.BetaTime != 0.5 || p.Lambda != 1 {
		t.Errorf("preferences (%g, %g), want (0.5, 1)", p.BetaTime, p.Lambda)
	}
	if p.InterSiteKm != 1 {
		t.Errorf("inter-site = %g km, want 1", p.InterSiteKm)
	}
	if p.PathLoss.InterceptDB != 140.7 || p.PathLoss.SlopeDB != 36.7 || p.PathLoss.ShadowStdDB != 8 {
		t.Errorf("path loss = %+v, want paper model", p.PathLoss)
	}
}

func TestBuildShapes(t *testing.T) {
	sc := buildDefault(t, nil)
	if sc.U() != 8 || sc.S() != 9 || sc.N() != 3 {
		t.Fatalf("scenario shape U=%d S=%d N=%d", sc.U(), sc.S(), sc.N())
	}
	if got := sc.SubchannelHz(); math.Abs(got-20e6/3) > 1e-6 {
		t.Errorf("W = %g, want B/N", got)
	}
	if got := sc.NoiseW; math.Abs(got-1e-13) > 1e-22 {
		t.Errorf("noise = %g W, want 1e-13", got)
	}
	if len(sc.TxPowers()) != 8 {
		t.Errorf("tx power vector length %d", len(sc.TxPowers()))
	}
	for _, p := range sc.TxPowers() {
		if math.Abs(p-0.01) > 1e-12 {
			t.Errorf("tx power %g W, want 10 mW", p)
		}
	}
}

func TestBuildUsersInsideCells(t *testing.T) {
	sc := buildDefault(t, func(p *Params) { p.NumUsers = 200 })
	sites := make([]geom.Point, sc.S())
	for i, s := range sc.Servers {
		sites[i] = s.Pos
	}
	cellR := geom.HexCircumradius(1)
	for i, u := range sc.Users {
		_, d := geom.Nearest(u.Pos, sites)
		if d > cellR+1e-9 {
			t.Errorf("user %d at %v is %.3f km from its nearest BS (> cell circumradius %.3f)",
				i, u.Pos, d, cellR)
		}
	}
}

func TestBuildDeterministicInSeed(t *testing.T) {
	a := buildDefault(t, func(p *Params) { p.Seed = 77 })
	b := buildDefault(t, func(p *Params) { p.Seed = 77 })
	for i := range a.Users {
		if a.Users[i].Pos != b.Users[i].Pos {
			t.Fatalf("user %d position differs across identical seeds", i)
		}
	}
	for u := 0; u < a.Gain.Users(); u++ {
		for s := 0; s < a.Gain.Sites(); s++ {
			for j := 0; j < a.Gain.Channels(); j++ {
				if a.Gain.At(u, s, j) != b.Gain.At(u, s, j) {
					t.Fatalf("gain (%d,%d,%d) differs across identical seeds", u, s, j)
				}
			}
		}
	}
	c := buildDefault(t, func(p *Params) { p.Seed = 78 })
	if a.Users[0].Pos == c.Users[0].Pos {
		t.Error("different seeds produced identical first user position")
	}
}

func TestDerivedCoefficients(t *testing.T) {
	sc := buildDefault(t, nil)
	w := sc.SubchannelHz()
	for i := range sc.Users {
		u := sc.Users[i]
		d := sc.Derived(i)
		tLocal := u.Task.WorkCycles / u.FLocalHz
		eLocal := u.Kappa * u.FLocalHz * u.FLocalHz * u.Task.WorkCycles
		if math.Abs(d.TLocalS-tLocal) > 1e-12*tLocal {
			t.Errorf("user %d TLocal = %g, want %g", i, d.TLocalS, tLocal)
		}
		if math.Abs(d.ELocalJ-eLocal) > 1e-12*eLocal {
			t.Errorf("user %d ELocal = %g, want %g", i, d.ELocalJ, eLocal)
		}
		if want := u.Lambda * u.BetaTime * u.Task.DataBits / (tLocal * w); math.Abs(d.Phi-want) > 1e-12*want {
			t.Errorf("user %d phi = %g, want %g", i, d.Phi, want)
		}
		if want := u.Lambda * u.BetaEnergy * u.Task.DataBits / (eLocal * w); math.Abs(d.Psi-want) > 1e-12*want {
			t.Errorf("user %d psi = %g, want %g", i, d.Psi, want)
		}
		if want := u.Lambda * u.BetaTime * u.FLocalHz; math.Abs(d.Eta-want) > 1e-6 {
			t.Errorf("user %d eta = %g, want %g", i, d.Eta, want)
		}
		if math.Abs(d.SqrtEta-math.Sqrt(d.Eta)) > 1e-9 {
			t.Errorf("user %d sqrt eta inconsistent", i)
		}
		if want := u.Lambda * (u.BetaTime + u.BetaEnergy); math.Abs(d.GainConst-want) > 1e-12 {
			t.Errorf("user %d gain const = %g, want %g", i, d.GainConst, want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "zero users", mutate: func(p *Params) { p.NumUsers = 0 }},
		{name: "zero servers", mutate: func(p *Params) { p.NumServers = 0 }},
		{name: "zero channels", mutate: func(p *Params) { p.NumChannels = 0 }},
		{name: "zero bandwidth", mutate: func(p *Params) { p.BandwidthHz = 0 }},
		{name: "zero server freq", mutate: func(p *Params) { p.ServerFreqHz = 0 }},
		{name: "zero user freq", mutate: func(p *Params) { p.UserFreqHz = 0 }},
		{name: "zero kappa", mutate: func(p *Params) { p.Kappa = 0 }},
		{name: "beta above one", mutate: func(p *Params) { p.BetaTime = 1.5 }},
		{name: "beta negative", mutate: func(p *Params) { p.BetaTime = -0.1 }},
		{name: "lambda zero", mutate: func(p *Params) { p.Lambda = 0 }},
		{name: "lambda above one", mutate: func(p *Params) { p.Lambda = 1.5 }},
		{name: "zero spacing", mutate: func(p *Params) { p.InterSiteKm = 0 }},
		{name: "bad workload", mutate: func(p *Params) { p.Workload.DataBits = 0 }},
		{name: "bad path loss", mutate: func(p *Params) { p.PathLoss.SlopeDB = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if _, err := Build(p); err == nil {
				t.Error("Build accepted invalid params")
			}
		})
	}
}

func TestUserValidate(t *testing.T) {
	valid := User{
		Task:       task.Task{DataBits: 1e6, WorkCycles: 1e9},
		FLocalHz:   1e9,
		TxPowerW:   0.01,
		Kappa:      5e-27,
		BetaTime:   0.5,
		BetaEnergy: 0.5,
		Lambda:     1,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid user rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*User)
	}{
		{name: "zero freq", mutate: func(u *User) { u.FLocalHz = 0 }},
		{name: "zero power", mutate: func(u *User) { u.TxPowerW = 0 }},
		{name: "zero kappa", mutate: func(u *User) { u.Kappa = 0 }},
		{name: "betas do not sum", mutate: func(u *User) { u.BetaTime = 0.9 }},
		{name: "beta out of range", mutate: func(u *User) { u.BetaTime, u.BetaEnergy = 1.2, -0.2 }},
		{name: "lambda zero", mutate: func(u *User) { u.Lambda = 0 }},
		{name: "bad task", mutate: func(u *User) { u.Task.DataBits = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			u := valid
			tt.mutate(&u)
			if err := u.Validate(); err == nil {
				t.Error("invalid user accepted")
			}
		})
	}
}

func TestScenarioValidateCatchesMismatchedGain(t *testing.T) {
	sc := buildDefault(t, nil)
	sc.Gain = sc.Gain.Truncate(sc.Gain.Users() - 1)
	if err := sc.Validate(); err == nil {
		t.Error("truncated gain tensor accepted")
	}
}

func TestServerValidate(t *testing.T) {
	if err := (Server{FHz: 20e9}).Validate(); err != nil {
		t.Errorf("valid server rejected: %v", err)
	}
	if err := (Server{FHz: 0}).Validate(); err == nil {
		t.Error("zero-capacity server accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := buildDefault(t, func(p *Params) { p.NumUsers = 5; p.Seed = 13 })
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Scenario
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.U() != orig.U() || got.S() != orig.S() || got.N() != orig.N() {
		t.Fatalf("shape changed: %d/%d/%d vs %d/%d/%d",
			got.U(), got.S(), got.N(), orig.U(), orig.S(), orig.N())
	}
	if got.Seed != orig.Seed || got.BandwidthHz != orig.BandwidthHz || got.NoiseW != orig.NoiseW {
		t.Error("scalar fields changed in round trip")
	}
	for u := 0; u < orig.Gain.Users(); u++ {
		for s := 0; s < orig.Gain.Sites(); s++ {
			for j := 0; j < orig.Gain.Channels(); j++ {
				if got.Gain.At(u, s, j) != orig.Gain.At(u, s, j) {
					t.Fatalf("gain (%d,%d,%d) changed in round trip", u, s, j)
				}
			}
		}
	}
	// Derived values must be usable after decode (Finalize ran).
	for u := range got.Users {
		if got.Derived(u).Eta <= 0 {
			t.Fatalf("derived coefficients missing after decode for user %d", u)
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	var sc Scenario
	if err := json.Unmarshal([]byte(`{"users":[],"servers":[]}`), &sc); err == nil {
		t.Error("empty scenario decoded without error")
	}
	if err := json.Unmarshal([]byte(`{not json`), &sc); err == nil {
		t.Error("malformed JSON decoded without error")
	}
}
