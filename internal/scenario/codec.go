package scenario

import (
	"encoding/json"
	"fmt"

	"github.com/tsajs/tsajs/internal/radio"
)

// scenarioJSON mirrors Scenario's exported fields for serialization. A
// separate type avoids infinite recursion in the Unmarshaler and keeps the
// wire format explicit. GainTensor's own codec emits the nested
// [][][]float64 array, so the wire format is unchanged by the flattened
// in-memory layout.
type scenarioJSON struct {
	Users           []User           `json:"users"`
	Servers         []Server         `json:"servers"`
	Gain            radio.GainTensor `json:"gain"`
	Model           json.RawMessage  `json:"model,omitempty"`
	NumChannels     int              `json:"numChannels"`
	BandwidthHz     float64          `json:"bandwidthHz"`
	NoiseW          float64          `json:"noiseW"`
	DownlinkRateBps float64          `json:"downlinkRateBps,omitempty"`
	Seed            uint64           `json:"seed"`
}

// MarshalJSON serializes the scenario. Derived values are recomputed on
// load, not stored.
func (sc *Scenario) MarshalJSON() ([]byte, error) {
	model, err := json.Marshal(sc.Model)
	if err != nil {
		return nil, err
	}
	return json.Marshal(scenarioJSON{
		Users:           sc.Users,
		Servers:         sc.Servers,
		Gain:            sc.Gain,
		Model:           model,
		NumChannels:     sc.NumChannels,
		BandwidthHz:     sc.BandwidthHz,
		NoiseW:          sc.NoiseW,
		DownlinkRateBps: sc.DownlinkRateBps,
		Seed:            sc.Seed,
	})
}

// UnmarshalJSON deserializes and finalizes the scenario, so a decoded
// instance is immediately usable.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var raw scenarioJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("scenario: decode: %w", err)
	}
	sc.Users = raw.Users
	sc.Servers = raw.Servers
	sc.Gain = raw.Gain
	sc.NumChannels = raw.NumChannels
	sc.BandwidthHz = raw.BandwidthHz
	sc.NoiseW = raw.NoiseW
	sc.DownlinkRateBps = raw.DownlinkRateBps
	sc.Seed = raw.Seed
	if len(raw.Model) > 0 {
		if err := json.Unmarshal(raw.Model, &sc.Model); err != nil {
			return fmt.Errorf("scenario: decode path-loss model: %w", err)
		}
	}
	return sc.Finalize()
}
