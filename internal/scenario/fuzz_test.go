package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalScenario hardens the scenario decoder: arbitrary bytes must
// either produce a fully finalized, valid scenario or an error — never a
// panic and never a half-initialized instance.
func FuzzUnmarshalScenario(f *testing.F) {
	// Seed with a real scenario, a truncation of it, and junk.
	p := DefaultParams()
	p.NumUsers = 3
	p.NumServers = 2
	p.NumChannels = 2
	sc, err := Build(p)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := json.Marshal(sc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"users": null, "servers": []}`))
	f.Add([]byte(`{"users":[{"fLocalHz":-1}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Scenario
		if err := json.Unmarshal(data, &got); err != nil {
			return // rejected, fine
		}
		// Accepted: the instance must be internally consistent and
		// immediately usable.
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid scenario: %v", err)
		}
		for u := 0; u < got.U(); u++ {
			d := got.Derived(u)
			if !(d.Eta > 0) || !(d.TLocalS > 0) || !(d.ELocalJ > 0) {
				t.Fatalf("accepted scenario has unusable derived values for user %d: %+v", u, d)
			}
		}
	})
}

// FuzzScenarioCodec checks the codec round-trip on arbitrary input: any
// blob the decoder accepts must encode to JSON that decodes again to an
// equivalent scenario — same dimensions, same radio constants, and
// bit-identical precomputed tables — and the encoding must be a fixed
// point (encode∘decode∘encode == encode). A failure here means scenarios
// silently mutate across save/load cycles.
func FuzzScenarioCodec(f *testing.F) {
	p := DefaultParams()
	p.NumUsers = 3
	p.NumServers = 2
	p.NumChannels = 2
	sc, err := Build(p)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := json.Marshal(sc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"users":[],"servers":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var first Scenario
		if err := json.Unmarshal(data, &first); err != nil {
			return // rejected, fine
		}
		encoded, err := json.Marshal(&first)
		if err != nil {
			t.Fatalf("accepted scenario failed to encode: %v", err)
		}
		var second Scenario
		if err := json.Unmarshal(encoded, &second); err != nil {
			t.Fatalf("own encoding rejected on decode: %v\nencoding: %s", err, encoded)
		}
		if second.U() != first.U() || second.S() != first.S() || second.N() != first.N() {
			t.Fatalf("round-trip changed dimensions: (%d,%d,%d) -> (%d,%d,%d)",
				first.U(), first.S(), first.N(), second.U(), second.S(), second.N())
		}
		if second.BandwidthHz != first.BandwidthHz || second.NoiseW != first.NoiseW ||
			second.DownlinkRateBps != first.DownlinkRateBps || second.Seed != first.Seed {
			t.Fatal("round-trip changed radio constants")
		}
		// The derived flat tables drive every objective evaluation; they
		// must survive the trip bit for bit (JSON float encoding is
		// shortest-round-trip, so exact equality is the right bar).
		a, b := first.RecvPower(), second.RecvPower()
		if len(a) != len(b) {
			t.Fatalf("round-trip changed received-power table length %d -> %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("received-power table entry %d changed: %v -> %v", i, a[i], b[i])
			}
		}
		again, err := json.Marshal(&second)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if string(again) != string(encoded) {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %s\nsecond: %s", encoded, again)
		}
	})
}
