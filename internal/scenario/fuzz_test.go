package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalScenario hardens the scenario decoder: arbitrary bytes must
// either produce a fully finalized, valid scenario or an error — never a
// panic and never a half-initialized instance.
func FuzzUnmarshalScenario(f *testing.F) {
	// Seed with a real scenario, a truncation of it, and junk.
	p := DefaultParams()
	p.NumUsers = 3
	p.NumServers = 2
	p.NumChannels = 2
	sc, err := Build(p)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := json.Marshal(sc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"users": null, "servers": []}`))
	f.Add([]byte(`{"users":[{"fLocalHz":-1}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Scenario
		if err := json.Unmarshal(data, &got); err != nil {
			return // rejected, fine
		}
		// Accepted: the instance must be internally consistent and
		// immediately usable.
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid scenario: %v", err)
		}
		for u := 0; u < got.U(); u++ {
			d := got.Derived(u)
			if !(d.Eta > 0) || !(d.TLocalS > 0) || !(d.ELocalJ > 0) {
				t.Fatalf("accepted scenario has unusable derived values for user %d: %+v", u, d)
			}
		}
	})
}
