// Package task models the user computation tasks of the TSAJS system: the
// atomic assignment T_u = ⟨d_u, w_u⟩ of Section III-A1 of the paper, local
// execution cost, and workload generators used by the experiments.
package task

import (
	"errors"
	"fmt"

	"github.com/tsajs/tsajs/internal/simrand"
)

// Task is a single non-divisible computation task T_u = ⟨d_u, w_u⟩.
type Task struct {
	// DataBits is d_u: the input volume (program state, instructions,
	// inputs) that must be uploaded to offload the task, in bits.
	DataBits float64 `json:"dataBits"`
	// WorkCycles is w_u: the computational load in CPU cycles.
	WorkCycles float64 `json:"workCycles"`
	// OutputBits is o_u: the result volume returned on the downlink.
	// The paper's base model ignores downlink delay (small outputs, fast
	// downlink) but notes the algorithm adapts when it matters; a zero
	// value (the default) reproduces the base model. See
	// Scenario.DownlinkRateBps.
	OutputBits float64 `json:"outputBits,omitempty"`
}

// Validate reports whether the task parameters are physically meaningful.
func (t Task) Validate() error {
	if t.DataBits <= 0 {
		return fmt.Errorf("task: data size must be positive, got %g bits", t.DataBits)
	}
	if t.WorkCycles <= 0 {
		return fmt.Errorf("task: workload must be positive, got %g cycles", t.WorkCycles)
	}
	if t.OutputBits < 0 {
		return fmt.Errorf("task: output size must be non-negative, got %g bits", t.OutputBits)
	}
	return nil
}

// LocalCost is the time and energy of executing a task on the user device.
type LocalCost struct {
	// TimeS is t_u^local = w_u / f_u^local, in seconds.
	TimeS float64
	// EnergyJ is E_u^local = κ·(f_u^local)²·w_u (Eq. 1), in Joules.
	EnergyJ float64
}

// Local computes the local execution cost of t on a device with CPU
// frequency fLocalHz (cycles/s) and chip energy coefficient kappa.
func Local(t Task, fLocalHz, kappa float64) (LocalCost, error) {
	if fLocalHz <= 0 {
		return LocalCost{}, errors.New("task: local CPU frequency must be positive")
	}
	if kappa <= 0 {
		return LocalCost{}, errors.New("task: energy coefficient kappa must be positive")
	}
	if err := t.Validate(); err != nil {
		return LocalCost{}, err
	}
	return LocalCost{
		TimeS:   t.WorkCycles / fLocalHz,
		EnergyJ: kappa * fLocalHz * fLocalHz * t.WorkCycles,
	}, nil
}

// Generator produces task parameters for a population of users. The paper's
// experiments use homogeneous tasks (fixed d_u and w_u per data point); the
// jitter fields allow heterogeneous populations for the examples and
// robustness tests.
type Generator struct {
	// DataBits and WorkCycles are the nominal task parameters.
	DataBits   float64
	WorkCycles float64
	// OutputBits is the nominal result size (0 in the paper's base
	// model, which ignores the downlink).
	OutputBits float64
	// DataJitter and WorkJitter are relative half-widths: each user's
	// parameter is drawn uniformly from nominal·(1±jitter). Zero (the
	// paper's setting) makes every task identical.
	DataJitter float64
	WorkJitter float64
}

// Validate checks the generator configuration.
func (g Generator) Validate() error {
	if err := (Task{DataBits: g.DataBits, WorkCycles: g.WorkCycles, OutputBits: g.OutputBits}).Validate(); err != nil {
		return err
	}
	if g.DataJitter < 0 || g.DataJitter >= 1 {
		return fmt.Errorf("task: data jitter must be in [0,1), got %g", g.DataJitter)
	}
	if g.WorkJitter < 0 || g.WorkJitter >= 1 {
		return fmt.Errorf("task: work jitter must be in [0,1), got %g", g.WorkJitter)
	}
	return nil
}

// Generate draws n tasks from the generator.
func (g Generator) Generate(n int, rng *simrand.Source) ([]Task, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("task: cannot generate %d tasks", n)
	}
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			DataBits:   jitter(g.DataBits, g.DataJitter, rng),
			WorkCycles: jitter(g.WorkCycles, g.WorkJitter, rng),
			OutputBits: g.OutputBits,
		}
	}
	return tasks, nil
}

func jitter(nominal, rel float64, rng *simrand.Source) float64 {
	if rel == 0 {
		return nominal
	}
	return nominal * (1 + rel*(2*rng.Float64()-1))
}
