package task

import (
	"math"
	"testing"

	"github.com/tsajs/tsajs/internal/simrand"
)

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		task    Task
		wantErr bool
	}{
		{name: "valid", task: Task{DataBits: 1e6, WorkCycles: 1e9}},
		{name: "zero data", task: Task{DataBits: 0, WorkCycles: 1e9}, wantErr: true},
		{name: "negative data", task: Task{DataBits: -1, WorkCycles: 1e9}, wantErr: true},
		{name: "zero work", task: Task{DataBits: 1e6, WorkCycles: 0}, wantErr: true},
		{name: "negative work", task: Task{DataBits: 1e6, WorkCycles: -5}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.task.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestLocalCost(t *testing.T) {
	// The paper's numbers: w=1000 Megacycles on a 1 GHz device with
	// kappa=5e-27 takes 1 s and 5 J (Eq. 1).
	c, err := Local(Task{DataBits: 1, WorkCycles: 1e9}, 1e9, 5e-27)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TimeS-1) > 1e-12 {
		t.Errorf("local time = %g s, want 1", c.TimeS)
	}
	if math.Abs(c.EnergyJ-5) > 1e-9 {
		t.Errorf("local energy = %g J, want 5", c.EnergyJ)
	}
}

func TestLocalCostScaling(t *testing.T) {
	// Energy grows quadratically in frequency at fixed workload.
	base, err := Local(Task{DataBits: 1, WorkCycles: 1e9}, 1e9, 5e-27)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Local(Task{DataBits: 1, WorkCycles: 1e9}, 2e9, 5e-27)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.TimeS-base.TimeS/2) > 1e-12 {
		t.Errorf("doubling f should halve time: %g vs %g", fast.TimeS, base.TimeS)
	}
	if math.Abs(fast.EnergyJ-4*base.EnergyJ) > 1e-9 {
		t.Errorf("doubling f should quadruple energy: %g vs %g", fast.EnergyJ, base.EnergyJ)
	}
}

func TestLocalInvalidInputs(t *testing.T) {
	task := Task{DataBits: 1e6, WorkCycles: 1e9}
	if _, err := Local(task, 0, 5e-27); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := Local(task, 1e9, 0); err == nil {
		t.Error("zero kappa accepted")
	}
	if _, err := Local(Task{}, 1e9, 5e-27); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestGeneratorValidate(t *testing.T) {
	tests := []struct {
		name    string
		gen     Generator
		wantErr bool
	}{
		{name: "valid homogeneous", gen: Generator{DataBits: 1e6, WorkCycles: 1e9}},
		{name: "valid jittered", gen: Generator{DataBits: 1e6, WorkCycles: 1e9, DataJitter: 0.3, WorkJitter: 0.5}},
		{name: "bad data", gen: Generator{DataBits: 0, WorkCycles: 1e9}, wantErr: true},
		{name: "jitter too big", gen: Generator{DataBits: 1e6, WorkCycles: 1e9, DataJitter: 1}, wantErr: true},
		{name: "negative jitter", gen: Generator{DataBits: 1e6, WorkCycles: 1e9, WorkJitter: -0.1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.gen.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateHomogeneous(t *testing.T) {
	gen := Generator{DataBits: 3e6, WorkCycles: 2e9}
	tasks, err := gen.Generate(10, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 10 {
		t.Fatalf("generated %d tasks", len(tasks))
	}
	for i, tk := range tasks {
		if tk.DataBits != 3e6 || tk.WorkCycles != 2e9 {
			t.Errorf("task %d = %+v, want nominal values", i, tk)
		}
	}
}

func TestGenerateJitterBounds(t *testing.T) {
	gen := Generator{DataBits: 1e6, WorkCycles: 1e9, DataJitter: 0.2, WorkJitter: 0.4}
	tasks, err := gen.Generate(500, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sawLow, sawHigh := false, false
	for i, tk := range tasks {
		if tk.DataBits < 0.8e6 || tk.DataBits > 1.2e6 {
			t.Fatalf("task %d data %g outside jitter bounds", i, tk.DataBits)
		}
		if tk.WorkCycles < 0.6e9 || tk.WorkCycles > 1.4e9 {
			t.Fatalf("task %d work %g outside jitter bounds", i, tk.WorkCycles)
		}
		if tk.WorkCycles < 0.8e9 {
			sawLow = true
		}
		if tk.WorkCycles > 1.2e9 {
			sawHigh = true
		}
		if err := tk.Validate(); err != nil {
			t.Fatalf("task %d invalid: %v", i, err)
		}
	}
	if !sawLow || !sawHigh {
		t.Error("jitter never explored the outer half of its range")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := (Generator{}).Generate(3, simrand.New(1)); err == nil {
		t.Error("invalid generator accepted")
	}
	if _, err := (Generator{DataBits: 1, WorkCycles: 1}).Generate(-1, simrand.New(1)); err == nil {
		t.Error("negative count accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	gen := Generator{DataBits: 1e6, WorkCycles: 1e9, DataJitter: 0.5, WorkJitter: 0.5}
	a, err := gen.Generate(20, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(20, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d differs across identical seeds", i)
		}
	}
}
