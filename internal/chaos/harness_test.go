package chaos

import (
	"encoding/json"
	"testing"
	"time"
)

// TestHarnessSmoke runs the full calibrate → overload → verify cycle with
// short windows. This is the `make chaos-smoke` entry point: the coordinator
// is driven at 2× its measured sustainable rate over real TCP with a slow
// solver injected for the first half of the window, and every resilience
// invariant must hold.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness drives wall-clock load windows")
	}
	rep, err := Run(Config{
		Calibrate:  400 * time.Millisecond,
		Drive:      1600 * time.Millisecond,
		Deadline:   150 * time.Millisecond,
		FaultDelay: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("invariant violations: %v\nreport:\n%s", rep.Violations, blob)
	}
	if rep.Issued == 0 || rep.CalibratedRPS <= 0 {
		t.Fatalf("degenerate run: issued=%d calibrated=%.2f", rep.Issued, rep.CalibratedRPS)
	}
	if rep.OfferedRPS <= rep.CalibratedRPS {
		t.Fatalf("offered %.2f rps not above calibrated %.2f rps", rep.OfferedRPS, rep.CalibratedRPS)
	}
	t.Logf("calibrated %.1f rps, offered %.1f rps: %d issued, %d full / %d truncated / %d cheap / %d expired / %d shed; goodput %.2f (fault %.2f → recovery %.2f)",
		rep.CalibratedRPS, rep.OfferedRPS, rep.Issued,
		rep.Full, rep.Truncated, rep.Cheap, rep.Expired, rep.Shed,
		rep.GoodputFraction, rep.FaultGoodput, rep.RecoveryGoodput)
}

// TestHarnessDefaults pins the zero-value fill-ins the harness documents.
func TestHarnessDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.RateMultiplier != 2 {
		t.Errorf("default rate multiplier = %g, want 2", cfg.RateMultiplier)
	}
	if !cfg.Brownout.Enabled {
		t.Error("default harness config must enable brownout")
	}
	if cfg.FaultFraction != 0.5 {
		t.Errorf("default fault fraction = %g, want 0.5", cfg.FaultFraction)
	}
	if cfg.Deadline <= 0 || cfg.Drive <= 0 || cfg.Calibrate <= 0 {
		t.Errorf("defaults left a zero window: deadline=%s drive=%s calibrate=%s",
			cfg.Deadline, cfg.Drive, cfg.Calibrate)
	}
}
