// Package chaos is the end-to-end overload harness: it boots a real
// pipelined coordinator with fault injection, drives it over TCP at a
// multiple of its measured sustainable rate, and checks the
// overload-resilience invariants — every request answered exactly once, no
// deadline-expired full solves, a goodput floor under overload, and
// recovery once the fault window ends.
//
// The harness is the executable form of the serving path's resilience
// contract: unit tests pin each mechanism (admission, expiry, brownout,
// backpressure) in isolation; Run exercises them together against real
// sockets, real queue pressure, and an injected slow solver.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/tsajs/tsajs/internal/core"
	"github.com/tsajs/tsajs/internal/cran"
	"github.com/tsajs/tsajs/internal/faults"
	"github.com/tsajs/tsajs/internal/geom"
	"github.com/tsajs/tsajs/internal/scenario"
	"github.com/tsajs/tsajs/internal/task"
)

// Config parametrizes one harness run.
type Config struct {
	// Params describes the coordinated network. Zero takes
	// scenario.DefaultParams with 4 servers and 2 channels — small enough
	// that epochs solve in milliseconds on one core.
	Params scenario.Params
	// TTSABudget is the full-tier evaluation budget. Zero defaults to 1500.
	TTSABudget int
	// Seed drives the coordinator and the fault plan. Zero defaults to 1.
	Seed uint64
	// Conns is the number of concurrent client connections. Zero defaults
	// to 4.
	Conns int
	// Calibrate is the closed-loop window used to measure the sustainable
	// rate before overload begins. Zero defaults to 500ms.
	Calibrate time.Duration
	// Drive is the overload measurement window. Zero defaults to 2s.
	Drive time.Duration
	// RateMultiplier scales the calibrated rate into the offered overload
	// rate. Zero defaults to 2 — the harness's headline "2× sustainable".
	RateMultiplier float64
	// Deadline is the coordinator's DefaultDeadline during the overload
	// phase. Zero defaults to 250ms.
	Deadline time.Duration
	// Workers and QueueDepth configure the overloaded coordinator's
	// pipeline. Zero defaults to 1 worker / depth 8: a single solver makes
	// queue pressure — and therefore brownout and expiry — deterministic
	// to provoke.
	Workers    int
	QueueDepth int
	// Brownout configures degradation; the zero value enables it with the
	// package defaults (set Brownout.Enabled explicitly to run without).
	Brownout *cran.BrownoutConfig
	// FaultDelay and FaultProb configure the injected slow-solver fault.
	// Zeroes default to 40ms at probability 1.
	FaultDelay time.Duration
	FaultProb  float64
	// FaultFraction is the fraction of the drive window under fault,
	// starting at t=0. Zero defaults to 0.5 — faults in the first half,
	// recovery in the second.
	FaultFraction float64
	// GoodputFloor is the minimum fraction of issued requests that must
	// receive a scheduled decision (any tier) over the whole drive. Zero
	// defaults to 0.2.
	GoodputFloor float64
	// RecoveryMargin is the slack allowed when requiring recovery-phase
	// goodput to be at least fault-phase goodput. Zero defaults to 0.05.
	RecoveryMargin float64
}

func (c Config) withDefaults() Config {
	if c.Params.NumServers == 0 {
		c.Params = scenario.DefaultParams()
		c.Params.NumServers = 4
		c.Params.NumChannels = 2
	}
	if c.TTSABudget == 0 {
		c.TTSABudget = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Calibrate == 0 {
		c.Calibrate = 500 * time.Millisecond
	}
	if c.Drive == 0 {
		c.Drive = 2 * time.Second
	}
	if c.RateMultiplier == 0 {
		c.RateMultiplier = 2
	}
	if c.Deadline == 0 {
		c.Deadline = 250 * time.Millisecond
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.Brownout == nil {
		c.Brownout = &cran.BrownoutConfig{Enabled: true}
	}
	if c.FaultDelay == 0 {
		c.FaultDelay = 40 * time.Millisecond
	}
	if c.FaultProb == 0 {
		c.FaultProb = 1
	}
	if c.FaultFraction == 0 {
		c.FaultFraction = 0.5
	}
	if c.GoodputFloor == 0 {
		c.GoodputFloor = 0.2
	}
	if c.RecoveryMargin == 0 {
		c.RecoveryMargin = 0.05
	}
	return c
}

// Report is the harness outcome: outcome counts, phase goodputs, the
// coordinator's final counters, and any invariant violations (empty means
// the run passed).
type Report struct {
	CalibratedRPS float64 `json:"calibratedRPS"`
	OfferedRPS    float64 `json:"offeredRPS"`

	Issued    int `json:"issued"`
	Answered  int `json:"answered"`
	Full      int `json:"full"`
	Truncated int `json:"truncated"`
	Cheap     int `json:"cheap"`
	Expired   int `json:"expired"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`

	GoodputFraction float64 `json:"goodputFraction"`
	FaultGoodput    float64 `json:"faultGoodput"`
	RecoveryGoodput float64 `json:"recoveryGoodput"`

	Stats      cran.Stats `json:"stats"`
	Violations []string   `json:"violations"`
	// ErrorSample holds up to a handful of distinct transport error
	// strings, for diagnosing a failed answered-exactly-once invariant.
	ErrorSample []string `json:"errorSample,omitempty"`
}

// outcome classes for one driven request.
const (
	classFull = iota
	classTruncated
	classCheap
	classExpired
	classShed
	classError
)

type outcome struct {
	at    time.Duration // offset of the request start into the drive window
	class int
}

// Run executes the harness: calibrate, overload with faults, verify.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()

	calibrated, err := calibrate(cfg)
	if err != nil {
		return Report{}, fmt.Errorf("chaos: calibration: %w", err)
	}
	if calibrated <= 0 {
		return Report{}, errors.New("chaos: calibration measured zero sustainable throughput")
	}

	rep, err := overload(cfg, calibrated)
	if err != nil {
		return Report{}, fmt.Errorf("chaos: overload drive: %w", err)
	}
	return rep, nil
}

func serverConfig(cfg Config) cran.ServerConfig {
	ttsaCfg := core.DefaultConfig()
	ttsaCfg.MaxEvaluations = cfg.TTSABudget
	return cran.ServerConfig{
		Params:      cfg.Params,
		BatchWindow: 5 * time.Millisecond,
		TTSA:        &ttsaCfg,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		QueueDepth:  cfg.QueueDepth,
	}
}

// driveRequest builds the deterministic request for connection c, index i.
func driveRequest(c, i int) cran.OffloadRequest {
	return cran.OffloadRequest{
		UserID: fmt.Sprintf("chaos-%d-%d", c, i),
		Pos: geom.Point{
			X: 0.4*math.Cos(float64(c)+0.1*float64(i)) + 0.1,
			Y: 0.4 * math.Sin(float64(c)+0.1*float64(i)),
		},
		Task: task.Task{DataBits: 420 * 8 * 1024, WorkCycles: 1000e6},
	}
}

// calibrate measures the coordinator's closed-loop sustainable rate with no
// faults, no deadlines, and no brownout: Conns clients issuing back to back
// for the calibration window.
func calibrate(cfg Config) (float64, error) {
	srv, err := cran.NewServer("127.0.0.1:0", serverConfig(cfg))
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Calibrate+30*time.Second)
	defer cancel()
	deadline := time.Now().Add(cfg.Calibrate)
	counts := make([]int, cfg.Conns)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := cran.NewClient(srv.Addr().String(), cran.ResilienceConfig{
				MaxAttempts: 1, BreakerThreshold: -1,
			})
			if err != nil {
				return
			}
			defer cli.Close()
			for i := 0; time.Now().Before(deadline); i++ {
				if _, err := cli.Offload(ctx, driveRequest(c, i)); err == nil {
					counts[c]++
				}
			}
		}(c)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	return float64(total) / cfg.Calibrate.Seconds(), nil
}

// overload drives a fault-injected coordinator at the offered overload rate
// and classifies every request, then checks the invariants.
func overload(cfg Config, calibrated float64) (Report, error) {
	scfg := serverConfig(cfg)
	scfg.DefaultDeadline = cfg.Deadline
	scfg.Brownout = *cfg.Brownout
	// The fault window opens at server boot; driving starts immediately
	// after, so the two are within NewServer's setup latency of each other.
	start := time.Now()
	scfg.SolverChaos = &faults.SolverChaos{
		Seed:      cfg.Seed,
		DelayProb: cfg.FaultProb,
		Delay:     cfg.FaultDelay,
		Start:     start,
		Window:    time.Duration(cfg.FaultFraction * float64(cfg.Drive)),
	}
	srv, err := cran.NewServer("127.0.0.1:0", scfg)
	if err != nil {
		return Report{}, err
	}
	defer srv.Close()

	offered := calibrated * cfg.RateMultiplier
	interval := time.Duration(float64(time.Second) / offered)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Drive+30*time.Second)
	defer cancel()

	// Open-loop pacing: one goroutine per request, each on its own
	// connection. A request stuck behind the injected slow solver must not
	// throttle the offered load — the whole point is that arrivals keep
	// coming while the coordinator is degraded, forcing the admission,
	// expiry, and brownout paths to carry the overload.
	var (
		mu     sync.Mutex
		outs   []outcome
		errSet = map[string]struct{}{}
		wg     sync.WaitGroup
	)
	record := func(at time.Duration, class int, err error) {
		mu.Lock()
		outs = append(outs, outcome{at, class})
		if class == classError && err != nil && len(errSet) < 5 {
			errSet[err.Error()] = struct{}{}
		}
		mu.Unlock()
	}
	addr := srv.Addr().String()
	next := start
	for i := 0; ; i++ {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		at := time.Since(start)
		if at >= cfg.Drive {
			break
		}
		next = next.Add(interval)
		wg.Add(1)
		go func(i int, at time.Duration) {
			defer wg.Done()
			// MaxAttempts 2 absorbs one transient transport blip per
			// request; a shed retries once with backoff (backpressure
			// semantics) and then surfaces as its typed error.
			cli, err := cran.NewClient(addr, cran.ResilienceConfig{
				MaxAttempts: 2, BreakerThreshold: -1,
			})
			if err != nil {
				record(at, classError, err)
				return
			}
			defer cli.Close()
			resp, err := cli.Offload(ctx, driveRequest(i%cfg.Conns, i))
			record(at, classify(resp, err), err)
		}(i, at)
	}
	wg.Wait()

	stats := srv.Stats()
	rep := verdict(cfg, calibrated, offered, outs, stats)
	for msg := range errSet {
		rep.ErrorSample = append(rep.ErrorSample, msg)
	}
	return rep, nil
}

func classify(resp cran.OffloadResponse, err error) int {
	switch {
	case err == nil && resp.Tier == cran.TierTruncated:
		return classTruncated
	case err == nil && resp.Tier == cran.TierCheap:
		return classCheap
	case err == nil:
		return classFull
	case errors.Is(err, cran.ErrDeadlineExceeded):
		return classExpired
	case errors.Is(err, cran.ErrQueueFull), errors.Is(err, cran.ErrAdmissionRejected):
		return classShed
	default:
		return classError
	}
}

// verdict aggregates outcomes and evaluates the invariants.
func verdict(cfg Config, calibrated, offered float64, outs []outcome, stats cran.Stats) Report {
	rep := Report{CalibratedRPS: calibrated, OfferedRPS: offered, Stats: stats}
	faultEnd := time.Duration(cfg.FaultFraction * float64(cfg.Drive))
	// Phase buckets leave a margin around the fault edge: requests issued
	// just before it can legitimately resolve on either side.
	faultCut := faultEnd - faultEnd/10
	recoveryCut := faultEnd + (cfg.Drive-faultEnd)*2/5
	var faultGood, faultAll, recGood, recAll int
	for _, o := range outs {
		rep.Issued++
		switch o.class {
		case classFull:
			rep.Full++
		case classTruncated:
			rep.Truncated++
		case classCheap:
			rep.Cheap++
		case classExpired:
			rep.Expired++
		case classShed:
			rep.Shed++
		case classError:
			rep.Errors++
		}
		if o.class != classError {
			rep.Answered++
		}
		good := o.class == classFull || o.class == classTruncated || o.class == classCheap
		if o.at < faultCut {
			faultAll++
			if good {
				faultGood++
			}
		} else if o.at >= recoveryCut {
			recAll++
			if good {
				recGood++
			}
		}
	}
	scheduled := rep.Full + rep.Truncated + rep.Cheap
	if rep.Issued > 0 {
		rep.GoodputFraction = float64(scheduled) / float64(rep.Issued)
	}
	if faultAll > 0 {
		rep.FaultGoodput = float64(faultGood) / float64(faultAll)
	}
	if recAll > 0 {
		rep.RecoveryGoodput = float64(recGood) / float64(recAll)
	}

	fail := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	// Invariant 1: every issued request was answered exactly once — each
	// Offload call returned exactly one response or typed error; transport
	// errors would surface as classError.
	if rep.Answered != rep.Issued {
		fail("answered %d of %d issued requests (%d transport errors)", rep.Answered, rep.Issued, rep.Errors)
	}
	// Invariant 2: no solver worker ran a full-quality solve for an
	// already-expired request.
	if stats.FullSolvesExpired != 0 {
		fail("full-solve expiry tripwire fired %d times, want 0", stats.FullSolvesExpired)
	}
	// Invariant 3: goodput floor under overload — shedding and expiry are
	// allowed, collapse is not.
	if rep.GoodputFraction < cfg.GoodputFloor {
		fail("goodput %.3f below floor %.3f", rep.GoodputFraction, cfg.GoodputFloor)
	}
	// Invariant 4: the system recovers once the fault window closes —
	// goodput after recovery must not be materially below goodput under
	// fault.
	if recAll > 0 && faultAll > 0 && rep.RecoveryGoodput+cfg.RecoveryMargin < rep.FaultGoodput {
		fail("recovery goodput %.3f below fault-phase goodput %.3f", rep.RecoveryGoodput, rep.FaultGoodput)
	}
	// Bookkeeping cross-check: the coordinator's own expiry counter must
	// account for every client-observed expiry.
	if uint64(rep.Expired) > stats.ShedExpired {
		fail("clients saw %d expiries but the coordinator counted %d", rep.Expired, stats.ShedExpired)
	}
	return rep
}
