// Package delta implements the incremental ("delta") epoch policy shared
// by the dynamic replay and the C-RAN serving pipeline: a dirty-set
// tracker that flags users whose position moved beyond a configurable
// threshold since the previous epoch (plus users whose cached state is
// unusable — never seen, returning after an idle epoch, or parked on a
// failed server), and the gates that decide when an epoch must fall back
// to a full solve instead of a scoped "repair" anneal.
//
// The contract the consumers rely on:
//
//   - Dirtiness is history-free: whether a user is dirty in epoch e
//     depends only on the mobility trace, the activation history, and the
//     fault plan — never on which threshold previous epochs ran with.
//     With the drift gate disabled this makes dirty sets pointwise nested
//     across thresholds (lower threshold ⊇ higher threshold), the
//     property the metamorphic monotonicity suite asserts.
//   - Threshold 0 marks every active user step-dirty, so the all-dirty
//     gate fires every epoch and the run degenerates to a full solve per
//     epoch — the reference run of the differential harness.
//   - Full epochs are classified before any repair work happens, in a
//     fixed order (reset, cadence, all-dirty, dirty-frac, drift), so the
//     reason string in telemetry is deterministic.
package delta

import (
	"fmt"

	"github.com/tsajs/tsajs/internal/geom"
)

// Full-epoch reasons, in gate order. Repair epochs carry an empty reason.
const (
	// ReasonReset: the incumbent was lost (coordinator outage in the
	// replay) and the next solved epoch must rebuild from scratch.
	ReasonReset = "reset"
	// ReasonCadence: the periodic FullEvery fallback fired.
	ReasonCadence = "cadence"
	// ReasonAllDirty: every active user is dirty, so a repair would scope
	// to the whole population anyway.
	ReasonAllDirty = "all-dirty"
	// ReasonDirtyFrac: the dirty fraction exceeded MaxDirtyFrac.
	ReasonDirtyFrac = "dirty-frac"
	// ReasonDrift: some user accumulated DriftKm of displacement since its
	// row was last refreshed (slow drift below the per-step threshold).
	ReasonDrift = "drift"
)

// Config parametrizes the incremental epoch policy. A nil *Config on the
// consumer side means the delta path is disabled entirely.
type Config struct {
	// MoveThresholdKm marks a user dirty when its position moved at least
	// this far since the previous epoch. 0 marks every active user dirty,
	// which makes every epoch a full solve (the differential reference).
	MoveThresholdKm float64 `json:"moveThresholdKm"`
	// FullEvery forces a full solve on every epoch whose index is a
	// multiple of it, bounding how long errors from scoped repairs can
	// compound. 0 defaults to 8.
	FullEvery int `json:"fullEvery"`
	// MaxDirtyFrac falls back to a full solve when more than this
	// fraction of the active users is dirty (a repair that touches most
	// users costs as much as a full solve and searches less). 0 defaults
	// to 0.5.
	MaxDirtyFrac float64 `json:"maxDirtyFrac"`
	// DriftKm forces a full solve when any active user accumulated this
	// much displacement since its gain rows were last refreshed, catching
	// slow drift that stays under MoveThresholdKm every step. 0 disables
	// the gate (and keeps the policy monotone in the threshold).
	DriftKm float64 `json:"driftKm,omitempty"`
	// RepairEvalsPerUser scales the repair anneal's evaluation budget
	// with the dirty-set size. 0 defaults to 400.
	RepairEvalsPerUser int `json:"repairEvalsPerUser"`
	// RepairMinEvals floors the repair budget so tiny dirty sets still
	// get a meaningful walk. 0 defaults to 600.
	RepairMinEvals int `json:"repairMinEvals"`
	// RepairTemp is the repair anneal's initial temperature. The repair
	// starts from a near-optimal incumbent, so it runs much colder than a
	// full solve (whose default initial temperature is the user count).
	// 0 defaults to 0.5.
	RepairTemp float64 `json:"repairTemp"`
	// MaxTracked caps the per-user state the serving pipeline retains
	// (row cache, last position, incumbent slot); the least recently seen
	// users are evicted beyond it. 0 defaults to 8192. The replay tracker
	// ignores it (the population is fixed and bounded).
	MaxTracked int `json:"maxTracked,omitempty"`
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.FullEvery == 0 {
		c.FullEvery = 8
	}
	if c.MaxDirtyFrac == 0 {
		c.MaxDirtyFrac = 0.5
	}
	if c.RepairEvalsPerUser == 0 {
		c.RepairEvalsPerUser = 400
	}
	if c.RepairMinEvals == 0 {
		c.RepairMinEvals = 600
	}
	if c.RepairTemp == 0 {
		c.RepairTemp = 0.5
	}
	if c.MaxTracked == 0 {
		c.MaxTracked = 8192
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	c = c.WithDefaults()
	switch {
	case c.MoveThresholdKm < 0:
		return fmt.Errorf("delta: move threshold must be non-negative, got %g km", c.MoveThresholdKm)
	case c.FullEvery < 1:
		return fmt.Errorf("delta: full-solve cadence must be positive, got %d", c.FullEvery)
	case c.MaxDirtyFrac < 0 || c.MaxDirtyFrac > 1:
		return fmt.Errorf("delta: max dirty fraction must be in [0,1], got %g", c.MaxDirtyFrac)
	case c.DriftKm < 0:
		return fmt.Errorf("delta: drift gate must be non-negative, got %g km", c.DriftKm)
	case c.RepairEvalsPerUser < 1:
		return fmt.Errorf("delta: repair evaluations per user must be positive, got %d", c.RepairEvalsPerUser)
	case c.RepairMinEvals < 1:
		return fmt.Errorf("delta: repair evaluation floor must be positive, got %d", c.RepairMinEvals)
	case c.RepairTemp <= 0:
		return fmt.Errorf("delta: repair temperature must be positive, got %g", c.RepairTemp)
	case c.MaxTracked < 1:
		return fmt.Errorf("delta: tracked-user cap must be positive, got %d", c.MaxTracked)
	}
	return nil
}

// RepairBudget returns the evaluation budget for a repair anneal over the
// given dirty-set size: RepairEvalsPerUser·dirty floored at RepairMinEvals
// and capped at the full solve's budget (a repair must never out-spend the
// epoch it replaces). fullBudget <= 0 means uncapped.
func (c Config) RepairBudget(dirty, fullBudget int) int {
	b := c.RepairEvalsPerUser * dirty
	if b < c.RepairMinEvals {
		b = c.RepairMinEvals
	}
	if fullBudget > 0 && b > fullBudget {
		b = fullBudget
	}
	return b
}

// Plan is the tracker's verdict for one epoch.
type Plan struct {
	// Full reports whether the epoch must run a full solve; Reason names
	// the gate that fired (one of the Reason constants).
	Full   bool
	Reason string
	// Dirty lists the dirty users as indices into the epoch's active
	// slice (not population indices), ascending. On a full epoch it still
	// holds the classification, but the consumer refreshes every active
	// user regardless.
	Dirty []int
	// StepDirty counts how many of the dirty users were flagged by the
	// movement threshold specifically (versus forced or first-seen).
	StepDirty int
}

// Rows returns how many gain-tensor rows the epoch refreshes: every
// active user on a full epoch, the dirty set on a repair epoch.
func (p Plan) Rows(active int) int {
	if p.Full {
		return active
	}
	return len(p.Dirty)
}

// Tracker classifies each replay epoch's active users into dirty and
// clean and gates full-solve fallbacks. It is population-indexed and
// never evicts, which is what keeps classification history-free: a user's
// refreshed flag equals "was active in some earlier epoch", independent
// of the threshold the run used.
type Tracker struct {
	cfg Config
	// lastPos is every user's position at the previous epoch (step
	// displacement reference); refreshPos the position at the last gain
	// refresh (drift reference); refreshed whether the user has ever had
	// rows drawn.
	lastPos    []geom.Point
	refreshPos []geom.Point
	refreshed  []bool
	// forceFull marks that the incumbent was lost (coordinator outage)
	// and the next solved epoch must be full.
	forceFull bool
	started   bool
}

// NewTracker builds a tracker for a population of n users. The config is
// defaulted; it must have passed Validate.
func NewTracker(cfg Config, n int) *Tracker {
	return &Tracker{
		cfg:        cfg.WithDefaults(),
		lastPos:    make([]geom.Point, n),
		refreshPos: make([]geom.Point, n),
		refreshed:  make([]bool, n),
	}
}

// Plan classifies the epoch. active lists the population indices holding
// a task, pos yields any user's current position, and forced (optional)
// marks users that must be re-placed regardless of movement — typically
// users whose incumbent slot sits on a failed server or who were inactive
// in the previous epoch (their carried slot is Local, so only a repair
// that targets them can offload them again).
//
// Plan also advances the tracker: lastPos moves to the current positions
// for the whole population, and the users the consumer will refresh
// (every active user on a full epoch, the dirty set otherwise) get their
// refreshed flag and refreshPos updated. Call it exactly once per solved
// epoch; use Skip for epochs with no solve.
func (t *Tracker) Plan(epoch int, active []int, pos func(int) geom.Point, forced func(int) bool) Plan {
	p := Plan{}
	for i, u := range active {
		cur := pos(u)
		switch {
		case !t.refreshed[u]:
			p.Dirty = append(p.Dirty, i)
		case t.started && cur.Dist(t.lastPos[u]) >= t.cfg.MoveThresholdKm:
			p.Dirty = append(p.Dirty, i)
			p.StepDirty++
		case forced != nil && forced(u):
			p.Dirty = append(p.Dirty, i)
		}
	}

	switch {
	case t.forceFull:
		p.Full, p.Reason = true, ReasonReset
	case epoch%t.cfg.FullEvery == 0:
		p.Full, p.Reason = true, ReasonCadence
	case len(p.Dirty) == len(active):
		p.Full, p.Reason = true, ReasonAllDirty
	case float64(len(p.Dirty)) > t.cfg.MaxDirtyFrac*float64(len(active)):
		p.Full, p.Reason = true, ReasonDirtyFrac
	case t.cfg.DriftKm > 0:
		for _, u := range active {
			if t.refreshed[u] && pos(u).Dist(t.refreshPos[u]) >= t.cfg.DriftKm {
				p.Full, p.Reason = true, ReasonDrift
				break
			}
		}
	}

	if p.Full {
		t.forceFull = false
		for _, u := range active {
			t.refreshed[u] = true
			t.refreshPos[u] = pos(u)
		}
	} else {
		for _, i := range p.Dirty {
			u := active[i]
			t.refreshed[u] = true
			t.refreshPos[u] = pos(u)
		}
	}
	t.step(pos)
	return p
}

// Skip advances the tracker over an epoch with no solve — an empty active
// set, or a coordinator outage. lostIncumbent marks that the previous
// decision no longer exists, forcing the next solved epoch to a full
// solve (reason "reset").
func (t *Tracker) Skip(pos func(int) geom.Point, lostIncumbent bool) {
	if lostIncumbent {
		t.forceFull = true
	}
	t.step(pos)
}

func (t *Tracker) step(pos func(int) geom.Point) {
	for u := range t.lastPos {
		t.lastPos[u] = pos(u)
	}
	t.started = true
}
