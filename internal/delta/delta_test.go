package delta

import (
	"testing"

	"github.com/tsajs/tsajs/internal/geom"
	"github.com/tsajs/tsajs/internal/simrand"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.FullEvery != 8 || c.MaxDirtyFrac != 0.5 || c.RepairEvalsPerUser != 400 ||
		c.RepairMinEvals != 600 || c.RepairTemp != 0.5 || c.MaxTracked != 8192 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid after defaulting: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MoveThresholdKm: -1},
		{FullEvery: -3},
		{MaxDirtyFrac: 2},
		{DriftKm: -0.1},
		{RepairEvalsPerUser: -5},
		{RepairMinEvals: -5},
		{RepairTemp: -1},
		{MaxTracked: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestRepairBudget(t *testing.T) {
	c := Config{RepairEvalsPerUser: 100, RepairMinEvals: 250}.WithDefaults()
	if got := c.RepairBudget(1, 4000); got != 250 {
		t.Errorf("floor: got %d, want 250", got)
	}
	if got := c.RepairBudget(5, 4000); got != 500 {
		t.Errorf("linear: got %d, want 500", got)
	}
	if got := c.RepairBudget(100, 4000); got != 4000 {
		t.Errorf("cap: got %d, want 4000", got)
	}
	if got := c.RepairBudget(100, 0); got != 10000 {
		t.Errorf("uncapped: got %d, want 10000", got)
	}
}

// walk synthesizes a deterministic mobility trace: per epoch, each user
// displaces by a random step whose length varies user to user, so any
// positive threshold splits the population.
func walk(rng *simrand.Source, n, epochs int) [][]geom.Point {
	pos := make([][]geom.Point, epochs)
	pos[0] = make([]geom.Point, n)
	for u := range pos[0] {
		pos[0][u] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	for e := 1; e < epochs; e++ {
		pos[e] = make([]geom.Point, n)
		for u := range pos[e] {
			step := 0.05 * rng.Float64()
			pos[e][u] = geom.Point{X: pos[e-1][u].X + step, Y: pos[e-1][u].Y}
		}
	}
	return pos
}

// TestTrackerNestedAcrossThresholds is the tracker-level metamorphic
// property: over the same trajectory and activation history, the dirty
// set at a higher threshold is a subset of the dirty set at any lower
// threshold, and a full verdict at the higher threshold implies one at
// the lower (drift gate off).
func TestTrackerNestedAcrossThresholds(t *testing.T) {
	const n, epochs = 20, 15
	rng := simrand.New(99)
	pos := walk(rng, n, epochs)
	active := make([][]int, epochs)
	for e := range active {
		for u := 0; u < n; u++ {
			if rng.Float64() < 0.8 {
				active[e] = append(active[e], u)
			}
		}
	}

	thresholds := []float64{0, 0.01, 0.02, 0.04, 1e9}
	trackers := make([]*Tracker, len(thresholds))
	for i, th := range thresholds {
		trackers[i] = NewTracker(Config{MoveThresholdKm: th, FullEvery: 6}, n)
	}
	for e := 0; e < epochs; e++ {
		plans := make([]Plan, len(trackers))
		for i, tr := range trackers {
			p := pos[e]
			plans[i] = tr.Plan(e, active[e], func(u int) geom.Point { return p[u] }, nil)
		}
		for i := 1; i < len(plans); i++ {
			lo, hi := plans[i-1], plans[i]
			inLo := make(map[int]bool, len(lo.Dirty))
			for _, idx := range lo.Dirty {
				inLo[idx] = true
			}
			for _, idx := range hi.Dirty {
				if !inLo[idx] {
					t.Fatalf("epoch %d: user index %d dirty at threshold %g but clean at %g",
						e, idx, thresholds[i], thresholds[i-1])
				}
			}
			if hi.Full && !lo.Full {
				t.Fatalf("epoch %d: full at threshold %g but repair at %g", e, thresholds[i], thresholds[i-1])
			}
			if hi.Rows(len(active[e])) > lo.Rows(len(active[e])) {
				t.Fatalf("epoch %d: threshold %g refreshes more rows than %g", e, thresholds[i], thresholds[i-1])
			}
		}
	}
}

func TestTrackerGates(t *testing.T) {
	const n = 10
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	still := func(int) geom.Point { return geom.Point{} }

	tr := NewTracker(Config{MoveThresholdKm: 0.01, FullEvery: 4}, n)
	if p := tr.Plan(0, all, still, nil); !p.Full || p.Reason != ReasonCadence {
		t.Fatalf("epoch 0: %+v, want cadence full (epoch%%4 == 0)", p)
	}
	// Nobody moves: repair epochs with an empty dirty set until the
	// cadence comes around again.
	for e := 1; e < 4; e++ {
		if p := tr.Plan(e, all, still, nil); p.Full || len(p.Dirty) != 0 {
			t.Fatalf("epoch %d: %+v, want clean repair", e, p)
		}
	}
	if p := tr.Plan(4, all, still, nil); !p.Full || p.Reason != ReasonCadence {
		t.Fatalf("epoch 4: %+v, want cadence full", p)
	}

	// Everyone jumps: the all-dirty gate fires before dirty-frac.
	jump := func(int) geom.Point { return geom.Point{X: 5} }
	if p := tr.Plan(5, all, jump, nil); !p.Full || p.Reason != ReasonAllDirty || p.StepDirty != n {
		t.Fatalf("epoch 5: %+v, want all-dirty full with %d step-dirty", p, n)
	}

	// A forced majority trips dirty-frac without any movement.
	if p := tr.Plan(6, all, jump, func(u int) bool { return u < 6 }); !p.Full || p.Reason != ReasonDirtyFrac {
		t.Fatalf("epoch 6: %+v, want dirty-frac full", p)
	}

	// Skip with a lost incumbent forces the next epoch full.
	tr.Skip(jump, true)
	if p := tr.Plan(7, all, jump, nil); !p.Full || p.Reason != ReasonReset {
		t.Fatalf("epoch 7 after lost incumbent: %+v, want reset full", p)
	}
}

// TestTrackerDriftGate: users creeping below the per-step threshold
// accumulate displacement since their last refresh until the drift gate
// forces a full solve.
func TestTrackerDriftGate(t *testing.T) {
	const n = 4
	all := []int{0, 1, 2, 3}
	tr := NewTracker(Config{MoveThresholdKm: 0.05, FullEvery: 100, DriftKm: 0.1}, n)
	x := 0.0
	at := func(int) geom.Point { return geom.Point{X: x} }
	if p := tr.Plan(0, all, at, nil); !p.Full {
		t.Fatalf("epoch 0: %+v", p)
	}
	sawDrift := false
	for e := 1; e <= 10; e++ {
		x += 0.02 // below the 0.05 step threshold, accumulating
		p := tr.Plan(e, all, at, nil)
		if p.Full {
			if p.Reason != ReasonDrift {
				t.Fatalf("epoch %d: full with reason %q, want drift", e, p.Reason)
			}
			sawDrift = true
			break
		}
		if len(p.Dirty) != 0 {
			t.Fatalf("epoch %d: creeping users marked step-dirty: %+v", e, p)
		}
	}
	if !sawDrift {
		t.Fatal("drift gate never fired over 0.2 km of creep")
	}
}

// TestTrackerFirstActivationIsDirty: a user first seen in epoch e has no
// cached rows and must be dirty regardless of movement; once refreshed,
// standing still keeps it clean.
func TestTrackerFirstActivationIsDirty(t *testing.T) {
	tr := NewTracker(Config{MoveThresholdKm: 0.05, FullEvery: 100}, 3)
	still := func(int) geom.Point { return geom.Point{} }
	if p := tr.Plan(0, []int{0, 1}, still, nil); !p.Full {
		t.Fatalf("epoch 0: %+v", p)
	}
	p := tr.Plan(1, []int{0, 1, 2}, still, nil)
	if p.Full {
		t.Fatalf("epoch 1 unexpectedly full: %+v", p)
	}
	if len(p.Dirty) != 1 || p.Dirty[0] != 2 {
		t.Fatalf("epoch 1 dirty = %v, want just the newcomer at active index 2", p.Dirty)
	}
	if p.StepDirty != 0 {
		t.Fatalf("newcomer counted as step-dirty: %+v", p)
	}
}
