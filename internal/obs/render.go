package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP/TYPE header per
// family, series sorted by label identity, histograms expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, s := range r.snapshotOrder() {
		if s.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				s.name, escapeHelp(s.help), s.name, s.kind); err != nil {
				return err
			}
			lastFamily = s.name
		}
		if err := writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusText renders the registry to a byte slice; see WritePrometheus.
func (r *Registry) PrometheusText() []byte {
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

func writeSeries(w io.Writer, s *series) error {
	id := labelID(s.labels)
	switch s.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, id, s.counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.name, id, formatFloat(s.gauge.Value()))
		return err
	case KindHistogram:
		snap := s.hist.Snapshot()
		var cum uint64
		for i, edge := range snap.Edges {
			cum += snap.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.name, withLE(s.labels, formatFloat(edge)), cum); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Edges)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE(s.labels, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, id, formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, id, cum)
		return err
	}
	return nil
}

// withLE renders the label set with the histogram `le` label appended.
func withLE(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with explicit +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text per the exposition
// format.
func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote, and newline in label
// values per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// JSONFloat is a float64 that marshals non-finite values as the quoted
// strings "+Inf", "-Inf", and "NaN" instead of failing, so a gauge holding
// an infinity can never break the JSON endpoint.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte(`"` + formatFloat(v) + `"`), nil
	}
	return []byte(formatFloat(v)), nil
}

// UnmarshalJSON accepts both plain numbers and the quoted non-finite
// spellings MarshalJSON emits, so rendered JSON round-trips.
func (f *JSONFloat) UnmarshalJSON(data []byte) error {
	s := string(data)
	switch s {
	case `"+Inf"`, `"Inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = JSONFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("obs: invalid JSONFloat %s", s)
	}
	*f = JSONFloat(v)
	return nil
}

// SeriesJSON is one metric series in the registry's JSON rendering.
type SeriesJSON struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Kind      string            `json:"kind"`
	Counter   *uint64           `json:"counter,omitempty"`
	Gauge     *JSONFloat        `json:"gauge,omitempty"`
	Histogram *HistogramJSON    `json:"histogram,omitempty"`
}

// HistogramJSON renders a histogram snapshot with cumulative buckets. The
// `le` edges are strings so the +Inf bucket survives JSON encoding.
type HistogramJSON struct {
	Count   uint64       `json:"count"`
	Sum     JSONFloat    `json:"sum"`
	Buckets []BucketJSON `json:"buckets"`
}

// BucketJSON is one cumulative histogram bucket.
type BucketJSON struct {
	LE         string `json:"le"`
	Cumulative uint64 `json:"cumulative"`
}

// RenderJSON renders the registry as a map from family name to its series,
// series ordered by label identity. Family keys are emitted in sorted
// order (encoding/json sorts map keys), so the output is deterministic.
func (r *Registry) RenderJSON() ([]byte, error) {
	families := make(map[string][]SeriesJSON)
	for _, s := range r.snapshotOrder() {
		js := SeriesJSON{Kind: s.kind.String()}
		if len(s.labels) > 0 {
			js.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				js.Labels[l.Key] = l.Value
			}
		}
		switch s.kind {
		case KindCounter:
			v := s.counter.Value()
			js.Counter = &v
		case KindGauge:
			v := JSONFloat(s.gauge.Value())
			js.Gauge = &v
		case KindHistogram:
			snap := s.hist.Snapshot()
			h := &HistogramJSON{Count: snap.Count(), Sum: JSONFloat(snap.Sum)}
			var cum uint64
			for i, edge := range snap.Edges {
				cum += snap.Counts[i]
				h.Buckets = append(h.Buckets, BucketJSON{LE: formatFloat(edge), Cumulative: cum})
			}
			cum += snap.Counts[len(snap.Edges)]
			h.Buckets = append(h.Buckets, BucketJSON{LE: "+Inf", Cumulative: cum})
			js.Histogram = h
		}
		families[s.name] = append(families[s.name], js)
	}
	return json.MarshalIndent(families, "", "  ")
}
