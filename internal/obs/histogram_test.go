package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

var propertyEdges = []float64{1, 2, 5, 10, 25, 50, 100}

// observeAll builds a histogram over propertyEdges holding the given values.
func observeAll(t *testing.T, values []float64) *Histogram {
	t.Helper()
	h, err := NewHistogram(propertyEdges)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		h.Observe(v)
	}
	return h
}

// intValues draws n integer-valued observations in [0, 150). Integer values
// keep float64 sum addition exact, so merged sums can be compared with ==.
func intValues(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(150))
	}
	return out
}

func equalSnapshots(a, b HistogramSnapshot) bool {
	if !equalEdges(a.Edges, b.Edges) || a.Sum != b.Sum || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

// TestHistogramMergeProperties checks, across 200 random shardings, that
// snapshot merge is commutative and associative, and that merging shards is
// exactly equivalent to observing the union in one histogram.
func TestHistogramMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		values := intValues(rng, 3+rng.Intn(300))
		cut1 := rng.Intn(len(values) + 1)
		cut2 := cut1 + rng.Intn(len(values)-cut1+1)
		a := observeAll(t, values[:cut1]).Snapshot()
		b := observeAll(t, values[cut1:cut2]).Snapshot()
		c := observeAll(t, values[cut2:]).Snapshot()

		ab, err := a.Merge(b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := b.Merge(a)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSnapshots(ab, ba) {
			t.Fatalf("trial %d: merge not commutative: %+v vs %+v", trial, ab, ba)
		}

		abc1, err := ab.Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := b.Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := a.Merge(bc)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSnapshots(abc1, abc2) {
			t.Fatalf("trial %d: merge not associative: %+v vs %+v", trial, abc1, abc2)
		}

		whole := observeAll(t, values).Snapshot()
		if !equalSnapshots(abc1, whole) {
			t.Fatalf("trial %d: merged shards != single histogram: %+v vs %+v", trial, abc1, whole)
		}
	}
}

func TestHistogramMergeRejectsDifferentEdges(t *testing.T) {
	a := observeAll(t, nil).Snapshot()
	b, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Merge(b.Snapshot()); err == nil {
		t.Error("merge across different bucket edges succeeded")
	}
}

// TestHistogramQuantileProperties checks, across random datasets, that the
// quantile estimate is exactly the bucket upper edge of the true q-quantile
// observation (the histogram's resolution limit) and monotone in q.
func TestHistogramQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	grid := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	for trial := 0; trial < 200; trial++ {
		values := intValues(rng, 1+rng.Intn(200))
		snap := observeAll(t, values).Snapshot()
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)

		prev := math.Inf(-1)
		for _, q := range grid {
			got := snap.Quantile(q)
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank == 0 {
				rank = 1
			}
			want := snap.BucketEdge(sorted[rank-1])
			if got != want {
				t.Fatalf("trial %d: Quantile(%g) = %g, want bucket edge %g of observation %g",
					trial, q, got, want, sorted[rank-1])
			}
			// The true observation is inside the reported bucket.
			if sorted[rank-1] > got {
				t.Fatalf("trial %d: Quantile(%g) = %g below true quantile %g", trial, q, got, sorted[rank-1])
			}
			if got < prev {
				t.Fatalf("trial %d: Quantile(%g) = %g decreased from %g", trial, q, got, prev)
			}
			prev = got
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	empty := observeAll(t, nil).Snapshot()
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram Quantile = %g, want NaN", q)
	}

	over := observeAll(t, []float64{1000}).Snapshot()
	if q := over.Quantile(0.5); !math.IsInf(q, 1) {
		t.Errorf("overflow-bucket Quantile = %g, want +Inf", q)
	}

	snap := observeAll(t, []float64{3, 4, 7}).Snapshot()
	// q outside [0,1] (and NaN) clamps rather than panics.
	if got := snap.Quantile(-1); got != snap.Quantile(0) {
		t.Errorf("Quantile(-1) = %g, want Quantile(0) = %g", got, snap.Quantile(0))
	}
	if got := snap.Quantile(2); got != snap.Quantile(1) {
		t.Errorf("Quantile(2) = %g, want Quantile(1) = %g", got, snap.Quantile(1))
	}
	if got := snap.Quantile(math.NaN()); got != snap.Quantile(0) {
		t.Errorf("Quantile(NaN) = %g, want Quantile(0) = %g", got, snap.Quantile(0))
	}
}

// TestHistogramBucketSemantics pins the `le` boundary rule: a value exactly
// on an edge counts into that edge's bucket, NaN lands in overflow.
func TestHistogramBucketSemantics(t *testing.T) {
	snap := observeAll(t, []float64{1, 1.0000001, 100, 100.5, math.NaN(), math.Inf(1)}).Snapshot()
	want := map[float64]uint64{1: 1, 2: 1, 100: 1}
	for i, edge := range snap.Edges {
		if snap.Counts[i] != want[edge] {
			t.Errorf("bucket le=%g count = %d, want %d", edge, snap.Counts[i], want[edge])
		}
	}
	if got := snap.Counts[len(snap.Edges)]; got != 3 {
		t.Errorf("overflow bucket = %d, want 3 (above-range, NaN, +Inf)", got)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, edges := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{1, math.NaN()},
		{1, math.Inf(1)},
	} {
		if _, err := NewHistogram(edges); err == nil {
			t.Errorf("NewHistogram(%v) accepted invalid edges", edges)
		}
	}
}

// TestRenderedCumulativeNonDecreasing checks the JSON rendering invariant
// that cumulative bucket counts never decrease and end at the total count.
func TestRenderedCumulativeNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reg := NewRegistry()
	h := reg.Histogram("tsajs_test_cumulative", "cumulative check", propertyEdges)
	for _, v := range intValues(rng, 500) {
		h.Observe(v)
	}
	snap := h.Snapshot()

	js, err := reg.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	rendered := decodeFamilies(t, js)["tsajs_test_cumulative"]
	if len(rendered) != 1 || rendered[0].Histogram == nil {
		t.Fatalf("unexpected rendering: %s", js)
	}
	var prev uint64
	for _, b := range rendered[0].Histogram.Buckets {
		if b.Cumulative < prev {
			t.Fatalf("cumulative count decreased at le=%s: %d < %d", b.LE, b.Cumulative, prev)
		}
		prev = b.Cumulative
	}
	if prev != snap.Count() {
		t.Errorf("final cumulative = %d, want total count %d", prev, snap.Count())
	}
}
