package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mux builds the introspection HTTP handler served by -metrics-addr:
//
//	/metrics  — the registry in Prometheus text exposition format
//	/stats    — the stats callback's value as JSON (the coordinator wires
//	            its legacy Stats snapshot here); the registry's JSON
//	            rendering when stats is nil
//	/healthz  — liveness: {"status":"ok","uptimeS":...}
//	/debug/pprof/ — the standard net/http/pprof profiling handlers
//
// The mux holds no locks across requests; every endpoint reads atomics or
// snapshot copies, so scraping never contends with the request hot path.
func Mux(reg *Registry, stats func() any) *http.ServeMux {
	started := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if stats == nil {
			blob, err := reg.RenderJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(blob)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":  "ok",
			"uptimeS": time.Since(started).Seconds(),
		})
	})

	// net/http/pprof registers on http.DefaultServeMux via init; route the
	// same handlers explicitly so the introspection mux stays private.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
