package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tsajs_test_total", "help").Add(3)
	srv := httptest.NewServer(Mux(reg, func() any {
		return map[string]int{"requests": 3}
	}))
	defer srv.Close()

	body, hdr := get(t, srv, "/metrics")
	if !strings.Contains(body, "tsajs_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}

	body, hdr = get(t, srv, "/stats")
	var stats map[string]int
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats["requests"] != 3 {
		t.Errorf("/stats = %v", stats)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/stats Content-Type = %q", ct)
	}

	body, _ = get(t, srv, "/healthz")
	var health struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptimeS"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health.Status != "ok" || health.UptimeS < 0 {
		t.Errorf("/healthz = %+v", health)
	}

	body, _ = get(t, srv, "/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

// TestMuxStatsFallsBackToRegistry covers the nil stats callback: /stats then
// serves the registry's own JSON rendering.
func TestMuxStatsFallsBackToRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("tsajs_test_gauge", "help").Set(1.5)
	srv := httptest.NewServer(Mux(reg, nil))
	defer srv.Close()

	body, _ := get(t, srv, "/stats")
	fams := decodeFamilies(t, []byte(body))
	series, ok := fams["tsajs_test_gauge"]
	if !ok || len(series) != 1 || series[0].Gauge == nil || float64(*series[0].Gauge) != 1.5 {
		t.Errorf("/stats fallback = %s", body)
	}
}
