package obs

import (
	"github.com/tsajs/tsajs/internal/solver"
)

// DefaultLatencyEdges bucket solve/epoch wall times in seconds, spanning
// sub-millisecond kernel solves to multi-second exhaustive sweeps.
var DefaultLatencyEdges = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultUtilityEdges bucket achieved system utilities. The paper's U=30
// default scenario lands around 15–25; the range covers the U and λ sweeps.
var DefaultUtilityEdges = []float64{
	0, 1, 2.5, 5, 7.5, 10, 15, 20, 30, 45, 60, 90, 120, 180,
}

// DefaultBatchEdges bucket coordinator epoch batch sizes.
var DefaultBatchEdges = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SolverMetrics turns solver.SolveStats reports into registry metrics,
// labelled by scheme. It implements solver.SolveObserver and is safe for
// concurrent use; the registry lookup per report takes the registry mutex,
// which is fine at once-per-solve granularity and keeps the annealer's
// inner loop untouched.
type SolverMetrics struct {
	reg    *Registry
	labels []Label
}

var _ solver.SolveObserver = (*SolverMetrics)(nil)

// NewSolverMetrics returns a solve observer recording into r under the
// tsajs_solver_* metric family, with the given constant labels added to
// every series.
func NewSolverMetrics(r *Registry, labels ...Label) *SolverMetrics {
	return &SolverMetrics{reg: r, labels: labels}
}

// ObserveSolve implements solver.SolveObserver.
func (m *SolverMetrics) ObserveSolve(st solver.SolveStats) {
	ls := append(append([]Label(nil), m.labels...), Label{Key: "scheme", Value: st.Scheme})
	m.reg.Counter("tsajs_solver_solves_total",
		"Completed scheduler solves.", ls...).Inc()
	m.reg.Counter("tsajs_solver_evaluations_total",
		"Objective evaluations performed by the search.", ls...).Add(uint64(st.Evaluations))
	m.reg.Counter("tsajs_solver_stages_total",
		"Temperature stages run by the annealer.", ls...).Add(uint64(st.Stages))
	m.reg.Counter("tsajs_solver_accelerated_stages_total",
		"Stages ended by the threshold-triggered fast cooling step (alpha2).", ls...).Add(uint64(st.AcceleratedStages))
	m.reg.Counter("tsajs_solver_moves_accepted_better_total",
		"Candidate moves accepted as improvements.", ls...).Add(uint64(st.AcceptedBetter))
	m.reg.Counter("tsajs_solver_moves_accepted_worse_total",
		"Deteriorating moves accepted by the Metropolis criterion.", ls...).Add(uint64(st.AcceptedWorse))
	m.reg.Counter("tsajs_solver_moves_rejected_total",
		"Candidate moves rejected and reverted.", ls...).Add(uint64(st.Rejected))
	m.reg.Counter("tsajs_solver_chains_total",
		"Restart chains merged into returned results.", ls...).Add(uint64(st.Chains))
	m.reg.Histogram("tsajs_solver_solve_seconds",
		"Wall-clock solve time.", DefaultLatencyEdges, ls...).Observe(st.Elapsed.Seconds())
	m.reg.Histogram("tsajs_solver_utility",
		"Achieved system utility per solve.", DefaultUtilityEdges, ls...).Observe(st.Utility)
	if secs := st.Elapsed.Seconds(); secs > 0 {
		m.reg.Gauge("tsajs_solver_evaluations_per_second",
			"Objective evaluation throughput of the most recent solve.", ls...).
			Set(float64(st.Evaluations) / secs)
	}
}

// PortfolioMetrics turns portfolio member outcomes into registry metrics,
// labelled by member: chain slots run, reduction wins, and cumulative
// wall-clock budget per member. It implements solver.MemberObserver and is
// safe for concurrent use at once-per-solve granularity (one registry
// lookup per slot per solve).
type PortfolioMetrics struct {
	reg    *Registry
	labels []Label
}

var _ solver.MemberObserver = (*PortfolioMetrics)(nil)

// NewPortfolioMetrics returns a member observer recording into r under the
// tsajs_portfolio_* metric family, with the given constant labels added to
// every series.
func NewPortfolioMetrics(r *Registry, labels ...Label) *PortfolioMetrics {
	return &PortfolioMetrics{reg: r, labels: labels}
}

// Slots returns member's chain-slot counter, registering it if absent.
func (m *PortfolioMetrics) Slots(member string) *Counter {
	ls := append(append([]Label(nil), m.labels...), Label{Key: "member", Value: member})
	return m.reg.Counter("tsajs_portfolio_member_slots_total",
		"Portfolio chain slots run, by member.", ls...)
}

// Wins returns member's reduction-win counter, registering it if absent.
func (m *PortfolioMetrics) Wins(member string) *Counter {
	ls := append(append([]Label(nil), m.labels...), Label{Key: "member", Value: member})
	return m.reg.Counter("tsajs_portfolio_member_wins_total",
		"Portfolio solves won (slot selected by the deterministic reduction), by member.", ls...)
}

// BudgetMs returns member's cumulative wall-clock budget gauge,
// registering it if absent.
func (m *PortfolioMetrics) BudgetMs(member string) *Gauge {
	ls := append(append([]Label(nil), m.labels...), Label{Key: "member", Value: member})
	return m.reg.Gauge("tsajs_portfolio_budget_ms",
		"Cumulative wall-clock milliseconds of chain-slot compute, by member.", ls...)
}

// ObserveMembers implements solver.MemberObserver.
func (m *PortfolioMetrics) ObserveMembers(outcomes []solver.MemberOutcome) {
	for _, o := range outcomes {
		m.Slots(o.Member).Inc()
		wins := m.Wins(o.Member)
		if o.Won {
			wins.Inc()
		}
		m.BudgetMs(o.Member).Add(o.ElapsedMs)
	}
}

// ClientMetrics are the device-side resilience counters of the cran client:
// transport attempts and failures, retry and redial activity, circuit
// breaker fast-fails, and graceful degradations to local execution. All
// fields are non-nil after NewClientMetrics.
type ClientMetrics struct {
	// Attempts counts transport attempts; Retries the subset that were
	// re-tries of an earlier failed attempt within one call.
	Attempts *Counter
	Retries  *Counter
	// Dials counts (re)connections established.
	Dials *Counter
	// TransportFailures counts attempts that failed on the wire.
	TransportFailures *Counter
	// BreakerFastFails counts calls answered without touching the network
	// because the circuit breaker was open.
	BreakerFastFails *Counter
	// Degraded counts calls gracefully degraded to an Eq.-1 local decision.
	Degraded *Counter
}

// NewClientMetrics registers the client resilience counters in r under the
// tsajs_client_* family with the given constant labels.
func NewClientMetrics(r *Registry, labels ...Label) *ClientMetrics {
	return &ClientMetrics{
		Attempts: r.Counter("tsajs_client_attempts_total",
			"Transport attempts (including retries).", labels...),
		Retries: r.Counter("tsajs_client_retries_total",
			"Retried transport attempts.", labels...),
		Dials: r.Counter("tsajs_client_dials_total",
			"Connections established to the coordinator.", labels...),
		TransportFailures: r.Counter("tsajs_client_transport_failures_total",
			"Transport attempts that failed on the wire.", labels...),
		BreakerFastFails: r.Counter("tsajs_client_breaker_fast_fails_total",
			"Calls failed fast because the circuit breaker was open.", labels...),
		Degraded: r.Counter("tsajs_client_degraded_total",
			"Calls gracefully degraded to a local-execution decision.", labels...),
	}
}
