package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a lock-free monotone counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a lock-free float64 gauge. The zero value reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// SetMax raises the gauge to v if v exceeds the current value — a
// lock-free running maximum.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloatBits adds delta to a float64 stored as bits, atomically.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
