package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a lock-free fixed-bucket histogram. A value v falls in the
// first bucket whose upper edge satisfies v <= edge (Prometheus `le`
// semantics); values above the last edge — and NaN, which compares false
// against every edge — land in the implicit +Inf overflow bucket. Observe
// is one binary search plus two atomic operations, safe for concurrent use.
type Histogram struct {
	edges   []float64
	counts  []atomic.Uint64 // len(edges)+1; last is the +Inf bucket
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram with the given bucket edges, which must
// be strictly ascending, finite, and non-empty.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("histogram needs at least one bucket edge")
	}
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("histogram edge %d is not finite: %g", i, e)
		}
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("histogram edges must be strictly ascending, got %g after %g", e, edges[i-1])
		}
	}
	own := make([]float64, len(edges))
	copy(own, edges)
	return &Histogram{edges: own, counts: make([]atomic.Uint64, len(edges)+1)}, nil
}

// Edges returns the bucket upper edges (without the implicit +Inf).
func (h *Histogram) Edges() []float64 {
	out := make([]float64, len(h.edges))
	copy(out, h.edges)
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.edges, v) // first edge >= v; len(edges) on overflow/NaN
	h.counts[i].Add(1)
	addFloatBits(&h.sumBits, v)
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// observes may straddle the copy; each bucket count is individually exact
// and monotone across snapshots.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Edges:  h.Edges(),
		Counts: make([]uint64, len(h.counts)),
	}
	// Read the sum before the buckets: a reader computing mean = Sum/Count
	// then underestimates the mean rather than fabricating observations.
	s.Sum = math.Float64frombits(h.sumBits.Load())
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable histogram state: per-bucket (not
// cumulative) counts, with Counts[len(Edges)] the +Inf overflow bucket.
type HistogramSnapshot struct {
	Edges  []float64
	Counts []uint64
	Sum    float64
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	return total
}

// Merge combines two snapshots of histograms with identical bucket edges.
// Bucket counts merge exactly (uint64 addition, so the merge is associative
// and commutative); sums merge by float64 addition, exact whenever the
// observed values are integers small enough to add without rounding.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if !equalEdges(s.Edges, o.Edges) {
		return HistogramSnapshot{}, fmt.Errorf("obs: cannot merge histograms with different bucket edges")
	}
	out := HistogramSnapshot{
		Edges:  append([]float64(nil), s.Edges...),
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// Quantile estimates the q-quantile as the upper edge of the bucket holding
// the ceil(q·n)-th smallest observation, so the estimate is always bounded
// below by the bucket's lower edge and above by its upper edge. It returns
// NaN for an empty histogram, and +Inf when the quantile falls in the
// overflow bucket. q is clamped to [0, 1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == len(s.Edges) {
				return math.Inf(1)
			}
			return s.Edges[i]
		}
	}
	return math.Inf(1)
}

// BucketEdge maps one observation to its bucket upper edge (+Inf for the
// overflow bucket) — the resolution limit of any quantile estimate.
func (s HistogramSnapshot) BucketEdge(v float64) float64 {
	i := sort.SearchFloat64s(s.Edges, v)
	if i == len(s.Edges) {
		return math.Inf(1)
	}
	return s.Edges[i]
}
