package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func decodeFamilies(t *testing.T, data []byte) map[string][]SeriesJSON {
	t.Helper()
	var out map[string][]SeriesJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("RenderJSON output does not parse: %v", err)
	}
	return out
}

// TestRegistryIdempotentRegistration asserts that re-registering the same
// (name, labels) returns the same metric instance, while different label
// sets (including reordered duplicates) resolve to distinct series.
func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("tsajs_test_total", "help",
		Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	b := reg.Counter("tsajs_test_total", "help",
		Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if a != b {
		t.Error("label order created a second series")
	}
	c := reg.Counter("tsajs_test_total", "help", Label{Key: "a", Value: "1"})
	if c == a {
		t.Error("different label sets shared a series")
	}

	h1 := reg.Histogram("tsajs_test_seconds", "help", []float64{1, 2})
	h2 := reg.Histogram("tsajs_test_seconds", "help", []float64{1, 2})
	if h1 != h2 {
		t.Error("histogram re-registration created a second instance")
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestRegistryRejectsMisuse(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tsajs_test_total", "help")
	mustPanic(t, "kind clash", func() { reg.Gauge("tsajs_test_total", "help") })

	reg.Histogram("tsajs_test_seconds", "help", []float64{1, 2})
	mustPanic(t, "edge clash", func() { reg.Histogram("tsajs_test_seconds", "help", []float64{1, 3}) })

	mustPanic(t, "bad name", func() { reg.Counter("tsajs test", "help") })
	mustPanic(t, "leading digit", func() { reg.Counter("9tsajs", "help") })
	mustPanic(t, "bad label key", func() { reg.Counter("tsajs_ok", "help", Label{Key: "le!", Value: "x"}) })
	mustPanic(t, "duplicate label key", func() {
		reg.Counter("tsajs_ok2", "help", Label{Key: "a", Value: "1"}, Label{Key: "a", Value: "2"})
	})
	mustPanic(t, "bad edges", func() { reg.Histogram("tsajs_bad_seconds", "help", nil) })
}

// TestConcurrentMetricUpdates hammers one counter, gauge, and histogram from
// many goroutines and checks nothing is lost — the -race run of this test is
// the lock-freedom proof for the whole metric layer.
func TestConcurrentMetricUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Registration itself must be concurrency-safe too.
			ctr := reg.Counter("tsajs_test_total", "help")
			g := reg.Gauge("tsajs_test_gauge", "help")
			h := reg.Histogram("tsajs_test_seconds", "help", []float64{1, 2, 4})
			for i := 0; i < perWorker; i++ {
				ctr.Inc()
				g.Add(1)
				g.SetMax(float64(w*perWorker + i))
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("tsajs_test_total", "help").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	snap := reg.Histogram("tsajs_test_seconds", "help", []float64{1, 2, 4}).Snapshot()
	if got := snap.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Gauge mixes Add and SetMax so its final value is racy by design, but
	// it must be at least the largest SetMax argument.
	if got := reg.Gauge("tsajs_test_gauge", "help").Value(); got < workers*perWorker-1 {
		t.Errorf("gauge = %g, want >= %d", got, workers*perWorker-1)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("SetMax lowered the gauge to %g", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax(9) left %g", got)
	}
	g.Set(-2)
	g.SetMax(math.Inf(1))
	if got := g.Value(); !math.IsInf(got, 1) {
		t.Errorf("SetMax(+Inf) left %g", got)
	}
}

func TestJSONFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -3, math.Inf(1), math.Inf(-1), math.NaN()} {
		data, err := json.Marshal(JSONFloat(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var back JSONFloat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		same := float64(back) == v || (math.IsNaN(v) && math.IsNaN(float64(back)))
		if !same {
			t.Errorf("round trip %g -> %s -> %g", v, data, float64(back))
		}
	}
	var bad JSONFloat
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Error("invalid JSONFloat accepted")
	}
}

// TestPrometheusGrammar spot-checks the exposition output against the format
// rules golden files alone would not explain: escaping and HELP/TYPE pairing.
func TestPrometheusGrammar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tsajs_test_total", "line one\nline two", Label{Key: "k", Value: `quote " slash \`}).Inc()
	text := string(reg.PrometheusText())
	for _, want := range []string{
		`# HELP tsajs_test_total line one\nline two`,
		"# TYPE tsajs_test_total counter",
		`tsajs_test_total{k="quote \" slash \\"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
