// Package obs is the repository's dependency-free observability layer: a
// metrics registry of lock-free counters, gauges, and fixed-bucket
// histograms, rendered in Prometheus text exposition format and JSON, with
// an optional HTTP introspection mux for live services.
//
// Design constraints, in order:
//
//  1. Zero third-party dependencies — everything is stdlib.
//  2. Overhead-safe on hot paths: every metric write is a single atomic
//     operation (histograms add one binary search over a small fixed edge
//     slice); registration and rendering take the registry mutex, writes
//     never do.
//  3. Invisible to results: instruments only read solver state, never
//     consume randomness, so instrumented and uninstrumented runs return
//     bit-identical decisions.
//  4. Deterministic output: rendering orders families by name and series by
//     label identity, histogram bucket counts merge exactly (uint64
//     addition), so golden tests are stable across runs and platforms.
//
// Naming convention: `tsajs_<subsystem>_<metric>[_total|_seconds]` with
// snake_case metrics, `_total` on monotone counters and base-unit suffixes
// (`_seconds`, `_bytes`) on measurements, following Prometheus practice.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one constant key/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Kind discriminates the metric types a registry can hold.
type Kind int

const (
	// KindCounter is a monotonically increasing uint64.
	KindCounter Kind = iota
	// KindGauge is a float64 that can move both ways.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered metric instance: a family name, its constant
// labels, and exactly one of the three metric kinds.
type series struct {
	name   string
	help   string
	kind   Kind
	labels []Label // sorted by key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// id is the unique registry key of the series: name plus the canonical
// label rendering, e.g. `requests_total{scheme="TSAJS"}`.
func (s *series) id() string { return s.name + labelID(s.labels) }

func labelID(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named metrics. Registration is idempotent: asking twice
// for the same (name, labels) returns the same metric, so independent
// subsystems can share one registry without coordination. The zero value
// is not usable; create with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byID   map[string]*series
	sorted bool
	order  []*series // lazily re-sorted view for rendering
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*series)}
}

// Counter returns the counter registered under name and labels, creating
// it on first use. It panics if the name is already registered with a
// different kind — metric identity clashes are programming errors.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, KindCounter, labels, nil)
	return s.counter
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, labels, nil)
	return s.gauge
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket edges on first use. Edges must be
// strictly ascending and finite; an implicit +Inf overflow bucket is always
// appended. Re-registration with different edges panics.
func (r *Registry) Histogram(name, help string, edges []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, KindHistogram, labels, edges)
	return s.hist
}

// lookup finds or creates a series under the registry mutex.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label, edges []float64) *series {
	if err := checkName(name); err != nil {
		panic("obs: " + err.Error())
	}
	canon := canonicalLabels(labels)
	key := name + labelID(canon)

	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byID[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", key, kind, s.kind))
		}
		if kind == KindHistogram && !equalEdges(s.hist.edges, edges) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different bucket edges", key))
		}
		return s
	}
	s := &series{name: name, help: help, kind: kind, labels: canon}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		h, err := NewHistogram(edges)
		if err != nil {
			panic("obs: " + err.Error())
		}
		s.hist = h
	}
	r.byID[key] = s
	r.order = append(r.order, s)
	r.sorted = false
	return s
}

// snapshotOrder returns the registered series sorted by family name then
// label identity — the deterministic rendering order.
func (r *Registry) snapshotOrder() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.Slice(r.order, func(i, j int) bool {
			if r.order[i].name != r.order[j].name {
				return r.order[i].name < r.order[j].name
			}
			return labelID(r.order[i].labels) < labelID(r.order[j].labels)
		})
		r.sorted = true
	}
	out := make([]*series, len(r.order))
	copy(out, r.order)
	return out
}

// canonicalLabels sorts a copy of the labels by key. Duplicate keys panic.
func canonicalLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key {
			panic("obs: duplicate label key " + out[i].Key)
		}
	}
	for _, l := range out {
		if err := checkLabelKey(l.Key); err != nil {
			panic("obs: " + err.Error())
		}
	}
	return out
}

// checkName enforces the Prometheus metric name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelKey enforces the label name grammar [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelKey(key string) error {
	if key == "" {
		return fmt.Errorf("empty label key")
	}
	for i, c := range key {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label key %q", key)
		}
	}
	return nil
}

func equalEdges(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
