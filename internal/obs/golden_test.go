package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/tsajs/tsajs/internal/solver"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenRegistry builds a registry whose rendering exercises every branch of
// the exposition format: all three kinds, labelled and unlabelled series,
// multiple series per family, label-value escaping, and non-finite floats.
func goldenRegistry() *Registry {
	reg := NewRegistry()

	reg.Counter("tsajs_test_requests_total", "Requests handled.").Add(42)
	reg.Counter("tsajs_test_requests_total", "Requests handled.",
		Label{Key: "scheme", Value: "TSAJS"}).Add(7)
	// Registration order deliberately differs from sort order: "ALO" < "TSAJS".
	reg.Counter("tsajs_test_requests_total", "Requests handled.",
		Label{Key: "scheme", Value: "ALO"}).Inc()

	reg.Gauge("tsajs_test_temperature", "Current annealing temperature.").Set(0.125)
	reg.Gauge("tsajs_test_ratio", "A gauge stuck at +Inf.").Set(math.Inf(1))

	// Label value with every escapable character: backslash, quote, newline.
	reg.Counter("tsajs_test_escapes_total", `Help with a \ backslash
and a newline.`, Label{Key: "path", Value: "a\\b\"c\nd"}).Inc()

	h := reg.Histogram("tsajs_test_delay_seconds", "Per-task delay.",
		[]float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.3, 0.3, 1.0, 99} {
		h.Observe(v)
	}
	reg.Histogram("tsajs_test_empty_seconds", "Histogram with no observations.",
		[]float64{1, 2})

	// The coordinator's solve-queue pipeline family (as registered by
	// internal/cran): pins the exposition of the queue gauges and a latency
	// histogram over the production bucket edges.
	reg.Counter("tsajs_coordinator_epochs_rejected_total",
		"Epoch batches failed at the solve-queue cap (fail-fast backpressure).").Add(3)
	reg.Gauge("tsajs_coordinator_queue_depth",
		"Epoch batches waiting in the solve queue, last sampled.").Set(2)
	reg.Gauge("tsajs_coordinator_inflight_solves",
		"Epoch solves currently executing on solver workers.").Set(1)
	reg.Gauge("tsajs_coordinator_solver_workers",
		"Configured solver worker count.").Set(4)
	lat := reg.Histogram("tsajs_coordinator_epoch_latency_seconds",
		"Collect-to-answer latency per epoch (queue wait + solve + evaluation).",
		DefaultLatencyEdges)
	for _, v := range []float64{0.002, 0.004, 0.05} {
		lat.Observe(v)
	}

	// The overload-resilience family (as registered by internal/cran): the
	// brownout degradation counters by tier, the shed counters by reason,
	// the deadline-expiry counters, and the admission wait-estimate gauge.
	reg.Counter("tsajs_coordinator_epochs_degraded_total",
		"Epochs the brownout controller solved below full quality, by tier.",
		Label{Key: "tier", Value: "truncated"}).Add(5)
	reg.Counter("tsajs_coordinator_epochs_degraded_total",
		"Epochs the brownout controller solved below full quality, by tier.",
		Label{Key: "tier", Value: "cheap"}).Add(2)
	reg.Counter("tsajs_coordinator_epochs_expired_total",
		"Epochs dropped whole at dequeue: every request's deadline had passed.").Inc()
	reg.Counter("tsajs_coordinator_shed_total",
		"Requests shed by backpressure, by reason.",
		Label{Key: "reason", Value: "queue_full"}).Add(11)
	reg.Counter("tsajs_coordinator_shed_total",
		"Requests shed by backpressure, by reason.",
		Label{Key: "reason", Value: "admission"}).Add(6)
	reg.Counter("tsajs_coordinator_shed_total",
		"Requests shed by backpressure, by reason.",
		Label{Key: "reason", Value: "deadline_expired"}).Add(4)
	reg.Counter("tsajs_coordinator_full_solves_expired_total",
		"Full-quality solves that included an already-expired request (serving-path tripwire; stays zero).")
	reg.Gauge("tsajs_coordinator_queue_wait_estimate_seconds",
		"Estimated queue wait for a newly admitted request (EWMA epoch service time times queue depth).").Set(0.0625)

	// The wirev2 transport family (as registered by internal/cran): byte
	// counters for both directions, the per-codec frame counter, and the
	// in-flight request gauge.
	reg.Counter("tsajs_coordinator_bytes_read_total",
		"Bytes read off the wire across both protocols (request lines, frames, handshakes).").Add(4096)
	reg.Counter("tsajs_coordinator_bytes_written_total",
		"Bytes written to the wire across both protocols (response lines and frames).").Add(2048)
	reg.Counter("tsajs_coordinator_frames_total",
		"Protocol frames processed in either direction, by codec.",
		Label{Key: "codec", Value: "json"}).Add(12)
	reg.Counter("tsajs_coordinator_frames_total",
		"Protocol frames processed in either direction, by codec.",
		Label{Key: "codec", Value: "binary"}).Add(30)
	reg.Gauge("tsajs_coordinator_inflight_requests",
		"Admitted requests currently awaiting their epoch's answer.").Set(5)

	// The sharded-tier family: the coordinator's shard identity gauges and
	// mis-routing tripwire (as registered by internal/cran) plus the shard
	// client's rollup and the router's own view (as registered by
	// internal/shard).
	reg.Counter("tsajs_coordinator_wrong_shard_total",
		"Requests rejected because their cell is owned by a different shard (mis-routing tripwire; stays zero in a correctly-routed cluster).")
	reg.Gauge("tsajs_coordinator_shard_index",
		"This coordinator's shard index in the cluster (zero when unpartitioned).").Set(1)
	reg.Gauge("tsajs_coordinator_shard_count",
		"Coordinator shards in the cluster (zero when unpartitioned).").Set(4)
	reg.Gauge("tsajs_coordinator_cells_owned",
		"Cells this shard owns under the cluster's assignment table (zero when unpartitioned).").Set(3)
	reg.Counter("tsajs_shard_requests_total",
		"Requests routed, by owning shard.",
		Label{Key: "shard", Value: "0"}).Add(17)
	reg.Counter("tsajs_shard_requests_total",
		"Requests routed, by owning shard.",
		Label{Key: "shard", Value: "1"}).Add(13)
	reg.Counter("tsajs_shard_handoffs_total",
		"Requests routed to a different shard than the same user's previous request (mobility crossing a shard boundary).").Add(9)
	shardLat := reg.Histogram("tsajs_shard_latency_seconds",
		"Route-to-answer latency per request through the shard fan-out.", DefaultLatencyEdges)
	for _, v := range []float64{0.001, 0.008, 0.02} {
		shardLat.Observe(v)
	}
	reg.Gauge("tsajs_shard_inflight_requests",
		"Requests currently in flight through the shard fan-out.").Set(2)
	reg.Counter("tsajs_router_requests_total",
		"Requests forwarded through the router.").Add(31)
	routerLat := reg.Histogram("tsajs_router_latency_seconds",
		"Receive-to-answer latency per request through the router.", DefaultLatencyEdges)
	for _, v := range []float64{0.003, 0.016} {
		routerLat.Observe(v)
	}
	reg.Gauge("tsajs_router_inflight_requests",
		"Requests currently being forwarded.").Set(1)

	// The adaptive-portfolio family (as recorded by PortfolioMetrics):
	// per-member slot and reduction-win counters plus the cumulative
	// wall-clock budget gauge.
	pm := NewPortfolioMetrics(reg)
	pm.ObserveMembers([]solver.MemberOutcome{
		{Slot: 0, Member: "ttsa", Utility: 18.5, ElapsedMs: 12.5, Won: true},
		{Slot: 1, Member: "cheap", Utility: 15.25, ElapsedMs: 0.5},
	})
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenPrometheus(t *testing.T) {
	checkGolden(t, "registry.prom", goldenRegistry().PrometheusText())
}

func TestGoldenJSON(t *testing.T) {
	got, err := goldenRegistry().RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The JSON endpoint must stay parseable even with +Inf gauges in play.
	var round map[string][]SeriesJSON
	if err := json.Unmarshal(got, &round); err != nil {
		t.Fatalf("golden JSON does not round-trip: %v", err)
	}
	checkGolden(t, "registry.json", append(got, '\n'))
}

// TestGoldenStableAcrossRegistrationOrder re-registers the same metrics in a
// different order and asserts the rendering is byte-identical — ordering
// comes from sorting, not registration history.
func TestGoldenStableAcrossRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	pm := NewPortfolioMetrics(reg)
	pm.BudgetMs("cheap").Add(0.5)
	pm.Wins("cheap")
	pm.Slots("cheap").Inc()
	pm.BudgetMs("ttsa").Add(12.5)
	pm.Wins("ttsa").Inc()
	pm.Slots("ttsa").Inc()
	reg.Gauge("tsajs_router_inflight_requests",
		"Requests currently being forwarded.").Set(1)
	routerLat := reg.Histogram("tsajs_router_latency_seconds",
		"Receive-to-answer latency per request through the router.", DefaultLatencyEdges)
	for _, v := range []float64{0.003, 0.016} {
		routerLat.Observe(v)
	}
	reg.Counter("tsajs_router_requests_total",
		"Requests forwarded through the router.").Add(31)
	reg.Gauge("tsajs_shard_inflight_requests",
		"Requests currently in flight through the shard fan-out.").Set(2)
	shardLat := reg.Histogram("tsajs_shard_latency_seconds",
		"Route-to-answer latency per request through the shard fan-out.", DefaultLatencyEdges)
	for _, v := range []float64{0.001, 0.008, 0.02} {
		shardLat.Observe(v)
	}
	reg.Counter("tsajs_shard_handoffs_total",
		"Requests routed to a different shard than the same user's previous request (mobility crossing a shard boundary).").Add(9)
	reg.Counter("tsajs_shard_requests_total",
		"Requests routed, by owning shard.",
		Label{Key: "shard", Value: "1"}).Add(13)
	reg.Counter("tsajs_shard_requests_total",
		"Requests routed, by owning shard.",
		Label{Key: "shard", Value: "0"}).Add(17)
	reg.Gauge("tsajs_coordinator_cells_owned",
		"Cells this shard owns under the cluster's assignment table (zero when unpartitioned).").Set(3)
	reg.Gauge("tsajs_coordinator_shard_count",
		"Coordinator shards in the cluster (zero when unpartitioned).").Set(4)
	reg.Gauge("tsajs_coordinator_shard_index",
		"This coordinator's shard index in the cluster (zero when unpartitioned).").Set(1)
	reg.Counter("tsajs_coordinator_wrong_shard_total",
		"Requests rejected because their cell is owned by a different shard (mis-routing tripwire; stays zero in a correctly-routed cluster).")
	reg.Gauge("tsajs_coordinator_inflight_requests",
		"Admitted requests currently awaiting their epoch's answer.").Set(5)
	reg.Counter("tsajs_coordinator_frames_total",
		"Protocol frames processed in either direction, by codec.",
		Label{Key: "codec", Value: "binary"}).Add(30)
	reg.Counter("tsajs_coordinator_frames_total",
		"Protocol frames processed in either direction, by codec.",
		Label{Key: "codec", Value: "json"}).Add(12)
	reg.Counter("tsajs_coordinator_bytes_written_total",
		"Bytes written to the wire across both protocols (response lines and frames).").Add(2048)
	reg.Counter("tsajs_coordinator_bytes_read_total",
		"Bytes read off the wire across both protocols (request lines, frames, handshakes).").Add(4096)
	reg.Gauge("tsajs_coordinator_queue_wait_estimate_seconds",
		"Estimated queue wait for a newly admitted request (EWMA epoch service time times queue depth).").Set(0.0625)
	reg.Counter("tsajs_coordinator_full_solves_expired_total",
		"Full-quality solves that included an already-expired request (serving-path tripwire; stays zero).")
	reg.Counter("tsajs_coordinator_shed_total",
		"Requests shed by backpressure, by reason.",
		Label{Key: "reason", Value: "deadline_expired"}).Add(4)
	reg.Counter("tsajs_coordinator_shed_total",
		"Requests shed by backpressure, by reason.",
		Label{Key: "reason", Value: "admission"}).Add(6)
	reg.Counter("tsajs_coordinator_shed_total",
		"Requests shed by backpressure, by reason.",
		Label{Key: "reason", Value: "queue_full"}).Add(11)
	reg.Counter("tsajs_coordinator_epochs_expired_total",
		"Epochs dropped whole at dequeue: every request's deadline had passed.").Inc()
	reg.Counter("tsajs_coordinator_epochs_degraded_total",
		"Epochs the brownout controller solved below full quality, by tier.",
		Label{Key: "tier", Value: "cheap"}).Add(2)
	reg.Counter("tsajs_coordinator_epochs_degraded_total",
		"Epochs the brownout controller solved below full quality, by tier.",
		Label{Key: "tier", Value: "truncated"}).Add(5)
	lat := reg.Histogram("tsajs_coordinator_epoch_latency_seconds",
		"Collect-to-answer latency per epoch (queue wait + solve + evaluation).",
		DefaultLatencyEdges)
	for _, v := range []float64{0.002, 0.004, 0.05} {
		lat.Observe(v)
	}
	reg.Gauge("tsajs_coordinator_solver_workers",
		"Configured solver worker count.").Set(4)
	reg.Gauge("tsajs_coordinator_inflight_solves",
		"Epoch solves currently executing on solver workers.").Set(1)
	reg.Gauge("tsajs_coordinator_queue_depth",
		"Epoch batches waiting in the solve queue, last sampled.").Set(2)
	reg.Counter("tsajs_coordinator_epochs_rejected_total",
		"Epoch batches failed at the solve-queue cap (fail-fast backpressure).").Add(3)
	reg.Histogram("tsajs_test_empty_seconds", "Histogram with no observations.",
		[]float64{1, 2})
	h := reg.Histogram("tsajs_test_delay_seconds", "Per-task delay.",
		[]float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.3, 0.3, 1.0, 99} {
		h.Observe(v)
	}
	reg.Counter("tsajs_test_escapes_total", `Help with a \ backslash
and a newline.`, Label{Key: "path", Value: "a\\b\"c\nd"}).Inc()
	reg.Gauge("tsajs_test_ratio", "A gauge stuck at +Inf.").Set(math.Inf(1))
	reg.Gauge("tsajs_test_temperature", "Current annealing temperature.").Set(0.125)
	reg.Counter("tsajs_test_requests_total", "Requests handled.",
		Label{Key: "scheme", Value: "ALO"}).Inc()
	reg.Counter("tsajs_test_requests_total", "Requests handled.",
		Label{Key: "scheme", Value: "TSAJS"}).Add(7)
	reg.Counter("tsajs_test_requests_total", "Requests handled.").Add(42)

	if got, want := reg.PrometheusText(), goldenRegistry().PrometheusText(); !bytes.Equal(got, want) {
		t.Errorf("rendering depends on registration order:\n--- reordered ---\n%s\n--- canonical ---\n%s", got, want)
	}
}
