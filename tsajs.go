package tsajs

import (
	"net/http"

	"github.com/tsajs/tsajs/internal/alloc"
	"github.com/tsajs/tsajs/internal/analysis"
	"github.com/tsajs/tsajs/internal/assign"
	"github.com/tsajs/tsajs/internal/baseline"
	"github.com/tsajs/tsajs/internal/chaos"
	"github.com/tsajs/tsajs/internal/core"
	"github.com/tsajs/tsajs/internal/cran"
	"github.com/tsajs/tsajs/internal/delta"
	"github.com/tsajs/tsajs/internal/dynamic"
	"github.com/tsajs/tsajs/internal/experiment"
	"github.com/tsajs/tsajs/internal/faults"
	"github.com/tsajs/tsajs/internal/geom"
	"github.com/tsajs/tsajs/internal/objective"
	"github.com/tsajs/tsajs/internal/obs"
	"github.com/tsajs/tsajs/internal/portfolio"
	"github.com/tsajs/tsajs/internal/report"
	"github.com/tsajs/tsajs/internal/scenario"
	"github.com/tsajs/tsajs/internal/shard"
	"github.com/tsajs/tsajs/internal/simrand"
	"github.com/tsajs/tsajs/internal/solver"
	"github.com/tsajs/tsajs/internal/spec"
	"github.com/tsajs/tsajs/internal/task"
)

// Core model types.
type (
	// Scenario is a complete, validated JTORA problem instance.
	Scenario = scenario.Scenario
	// Params configures Build; see DefaultParams for the paper defaults.
	Params = scenario.Params
	// User is one mobile user (position, task, device, preferences).
	User = scenario.User
	// Server is one MEC server co-located with a base station.
	Server = scenario.Server
	// Task is an atomic computation assignment ⟨d_u, w_u⟩.
	Task = task.Task
	// Point is a planar position in kilometres.
	Point = geom.Point
	// Assignment is an offloading decision X; it structurally enforces
	// the uniqueness constraints of the JTORA formulation.
	Assignment = assign.Assignment
	// Allocation is a computing-resource allocation F.
	Allocation = alloc.Allocation
	// Report is the full per-user evaluation of a decision.
	Report = objective.Report
	// UserMetrics is one user's outcome within a Report.
	UserMetrics = objective.UserMetrics
	// Result is the outcome of one scheduler run.
	Result = solver.Result
	// Scheduler is the common interface of TSAJS and all baselines.
	Scheduler = solver.Scheduler
	// Rand is the deterministic random source driving stochastic
	// schedulers and scenario generation.
	Rand = simrand.Source
	// Config parametrizes the TTSA scheduler (Algorithm 1).
	Config = core.Config
	// TTSA is the concrete TSAJS scheduler; beyond the Scheduler
	// interface it offers ScheduleTrace for convergence analysis.
	TTSA = core.TTSA
	// TracePoint is one temperature stage of a traced TTSA run.
	TracePoint = core.TracePoint
	// TraceSummary condenses a traced run (stages, evaluations,
	// accelerated-cooling count, time-to-99%).
	TraceSummary = analysis.Summary
	// TraceComparison reports relative convergence speed of two traces.
	TraceComparison = analysis.Comparison
	// MultiStart runs independent TTSA chains concurrently and keeps the
	// best result.
	MultiStart = core.MultiStart
	// Portfolio is the parallel multi-restart TTSA solver: K seed-split
	// chains over a bounded worker pool with a deterministic chain-index
	// reduction, so the merged result is bit-identical regardless of
	// worker count or goroutine scheduling.
	Portfolio = portfolio.Portfolio
	// PortfolioOptions configures a Portfolio (chain count, worker cap,
	// heterogeneous member roster, adaptive bandit selection, optional
	// non-deterministic shared-incumbent mode).
	PortfolioOptions = solver.PortfolioOptions
	// PortfolioMemberOutcome is one chain slot's outcome in a portfolio
	// solve: the member that ran it, the utility it reached, and whether it
	// won the reduction.
	PortfolioMemberOutcome = solver.MemberOutcome
	// PortfolioMemberTotal aggregates a member's lifetime slots, wins,
	// evaluations, and wall-clock budget across an adaptive run.
	PortfolioMemberTotal = solver.MemberTotal
	// PortfolioMetrics records per-member portfolio telemetry (chain slots,
	// epoch wins, cumulative budget milliseconds) into a registry; attach
	// with Portfolio.WithMemberObserver.
	PortfolioMetrics = obs.PortfolioMetrics
	// MoveWeights is the Algorithm 2 neighbourhood move mix.
	MoveWeights = core.MoveWeights
	// LocalSearchConfig parametrizes the LocalSearch baseline.
	LocalSearchConfig = baseline.LocalSearchConfig
	// ExperimentOptions controls paper-figure reproduction runs.
	ExperimentOptions = experiment.Options
	// FigureTable is one reproduced figure panel (x axis + series).
	FigureTable = report.Table
	// DynamicConfig parametrizes the multi-epoch online simulation
	// (mobility + stochastic task arrivals + per-epoch re-scheduling).
	DynamicConfig = dynamic.Config
	// DeltaConfig parametrizes delta-epoch incremental solving: dirty-set
	// tracking by movement threshold, the full-solve cadence and drift
	// gates, and the scoped repair anneal's budget. Wire it into
	// DynamicConfig.Delta (replay) or CoordinatorConfig.Delta (serving).
	DeltaConfig = delta.Config
	// DynamicResult aggregates an online simulation run.
	DynamicResult = dynamic.Result
	// EpochMetrics is one scheduling round of an online simulation.
	EpochMetrics = dynamic.EpochMetrics
	// Coordinator is the C-RAN scheduling service (the paper's
	// centralized BBU) serving offloading requests over TCP.
	Coordinator = cran.Server
	// CoordinatorConfig parametrizes a Coordinator.
	CoordinatorConfig = cran.ServerConfig
	// CoordinatorClient is a device-side connection to a Coordinator.
	CoordinatorClient = cran.Client
	// OffloadRequest and OffloadResponse are the coordinator's wire
	// messages.
	OffloadRequest  = cran.OffloadRequest
	OffloadResponse = cran.OffloadResponse
	// ResilienceConfig tunes the client-side fault tolerance: retries
	// with jittered exponential backoff, automatic reconnection, a
	// circuit breaker, and graceful degradation to local execution.
	ResilienceConfig = cran.ResilienceConfig
	// CoordinatorHealth is the coordinator's answer to a health probe.
	CoordinatorHealth = cran.Health
	// CoordinatorStats snapshots a coordinator's operational counters.
	CoordinatorStats = cran.Stats
	// FaultConfig parametrizes seedable fault-plan generation (two-state
	// Markov outages per edge server plus coordinator windows).
	FaultConfig = faults.Config
	// FaultPlan is a deterministic epoch-by-epoch failure schedule,
	// consumable by DynamicConfig.FaultPlan.
	FaultPlan = faults.Plan
	// ChaosConfig parametrizes fault-injecting connection wrappers for
	// protocol-level resilience testing.
	ChaosConfig = faults.ChaosConfig
	// SolverChaos injects deterministic per-epoch latency into the
	// coordinator's solve path (the slow-solver failure mode); wire into
	// CoordinatorConfig.SolverChaos, optionally windowed in wall-clock
	// time.
	SolverChaos = faults.SolverChaos
	// BrownoutConfig tunes the coordinator's graceful degradation: under
	// queue pressure epochs are solved with a truncated anneal or the
	// cheap deterministic solver instead of the full TTSA budget, with
	// hysteresis and a dwell so the tier never flaps.
	BrownoutConfig = cran.BrownoutConfig
	// OverloadConfig parametrizes the end-to-end chaos harness
	// (RunOverloadHarness).
	OverloadConfig = chaos.Config
	// OverloadReport is the chaos harness outcome: outcome counts, phase
	// goodputs, and any invariant violations.
	OverloadReport = chaos.Report
	// MetricsRegistry is the observability layer's metric registry:
	// lock-free counters, gauges, and fixed-bucket histograms, rendered in
	// Prometheus text exposition format and JSON.
	MetricsRegistry = obs.Registry
	// MetricLabel is one constant key/value label on a metric series.
	MetricLabel = obs.Label
	// SolverMetrics records per-solve scheduler telemetry (stage counts,
	// move acceptance, threshold-trigger activations, solve latency,
	// utility) into a registry; attach with TTSA.WithObserver or
	// Portfolio.WithObserver.
	SolverMetrics = obs.SolverMetrics
	// SolveStats is one solve's telemetry report.
	SolveStats = solver.SolveStats
	// SolveObserver receives per-solve telemetry from instrumented
	// schedulers.
	SolveObserver = solver.SolveObserver
	// ClientMetrics counts the resilient client's retries, redials,
	// breaker fast-fails, and graceful degradations; wire into
	// ResilienceConfig.Metrics.
	ClientMetrics = obs.ClientMetrics
	// CoordinatorPartition marks a coordinator as one shard of a K-shard
	// cluster: it owns the cells the assignment table gives its index,
	// rejects requests for foreign cells with ErrWrongShard, and counts
	// epochs per cell so decisions are independent of cluster layout.
	CoordinatorPartition = cran.PartitionConfig
	// ShardRing is the deterministic consistent-hash ring mapping cell IDs
	// to coordinator shards; every cluster component derives the same
	// cell→shard table from it.
	ShardRing = shard.Ring
	// ShardClient routes offload requests to the coordinator shard owning
	// the caller's cell, with per-shard resilient connections and
	// cross-shard handoff accounting.
	ShardClient = shard.Client
	// ShardClientConfig parametrizes a ShardClient.
	ShardClientConfig = shard.ClientConfig
	// ShardRouter fronts a whole shard cluster behind one JSON endpoint for
	// clients that are not shard-aware.
	ShardRouter = shard.Router
	// ShardRouterConfig parametrizes a ShardRouter.
	ShardRouterConfig = shard.RouterConfig
)

// Local marks a user as executing its task on the device in an Assignment.
const Local = assign.Local

// DefaultParams returns the paper's evaluation defaults (Section V): S=9
// hexagonal cells 1 km apart, N=3 subchannels over B=20 MHz, σ²=−100 dBm,
// P_u=10 dBm, f_s=20 GHz, f_u=1 GHz, κ=5·10⁻²⁷, d_u=420 KB, w_u=1000
// Megacycles, β^time=β^energy=0.5, λ=1.
func DefaultParams() Params { return scenario.DefaultParams() }

// Build draws a scenario instance from params (deterministic in
// params.Seed).
func Build(params Params) (*Scenario, error) { return scenario.Build(params) }

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *Rand { return simrand.New(seed) }

// DefaultConfig returns Algorithm 1's published constants.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewScheduler returns the TSAJS scheduler with the paper's defaults.
func NewScheduler() Scheduler { return core.NewDefault() }

// NewSchedulerWith returns a TSAJS scheduler with a custom configuration.
func NewSchedulerWith(cfg Config) (Scheduler, error) { return core.New(cfg) }

// NewTTSA returns the concrete TSAJS scheduler, exposing ScheduleTrace in
// addition to the Scheduler interface.
func NewTTSA(cfg Config) (*TTSA, error) { return core.New(cfg) }

// NewMultiStart returns a scheduler that runs `starts` independent TTSA
// chains (up to `parallelism` concurrently; 0 means GOMAXPROCS) and keeps
// the best result.
func NewMultiStart(cfg Config, starts, parallelism int) (*MultiStart, error) {
	return core.NewMultiStart(cfg, starts, parallelism)
}

// NewPortfolio returns the parallel multi-restart TTSA solver: opts.Chains
// independent chains, seed-split from the Schedule rng, merged by a
// deterministic reduction (chain-index order, ties to the lower index).
// The same seed always yields the same assignment and utility, bit for
// bit, whatever opts.Workers is — unless opts.SharedIncumbent trades that
// determinism for faster convergence.
func NewPortfolio(cfg Config, opts PortfolioOptions) (*Portfolio, error) {
	return portfolio.New(cfg, opts)
}

// PortfolioMemberNames lists every solver the heterogeneous portfolio can
// run as a chain member, for PortfolioOptions.Members: TTSA cooling and
// neighbourhood variants ("ttsa", "ttsa-fast", "ttsa-wide"), the
// incumbent-attraction population member ("attract"), and the zero-anneal
// baselines ("hjtora", "greedy", "cheap").
func PortfolioMemberNames() []string { return portfolio.MemberNames() }

// DefaultPortfolioMembers is the roster adaptive mode uses when
// PortfolioOptions.Members is empty: a diverse mix of anneal variants, the
// attraction member, and cheap deterministic baselines.
func DefaultPortfolioMembers() []string { return portfolio.DefaultAdaptiveMembers() }

// ParsePortfolioMembers parses a comma-separated member roster ("ttsa,
// attract,cheap"), validating every name against PortfolioMemberNames. An
// empty spec returns nil (the homogeneous-TTSA default).
func ParsePortfolioMembers(spec string) ([]string, error) { return portfolio.ParseMembers(spec) }

// NewPortfolioMetrics registers the tsajs_portfolio_* member telemetry
// family in r; attach to a portfolio with WithMemberObserver.
func NewPortfolioMetrics(r *MetricsRegistry, labels ...MetricLabel) *PortfolioMetrics {
	return obs.NewPortfolioMetrics(r, labels...)
}

// Baseline schedulers from the paper's evaluation.
func NewExhaustive() Scheduler  { return &baseline.Exhaustive{} }
func NewHJTORA() Scheduler      { return &baseline.HJTORA{} }
func NewGreedy() Scheduler      { return &baseline.Greedy{} }
func NewLocalSearch() Scheduler { return baseline.NewDefaultLocalSearch() }

// NewLocalSearchWith returns a LocalSearch baseline with a custom budget.
func NewLocalSearchWith(cfg LocalSearchConfig) (Scheduler, error) {
	return baseline.NewLocalSearch(cfg)
}

// NewAssignment returns an all-local decision sized for sc.
func NewAssignment(sc *Scenario) (*Assignment, error) {
	return assign.New(sc.U(), sc.S(), sc.N())
}

// SystemUtility evaluates J*(X): the system utility of decision a under
// the KKT-optimal resource allocation.
func SystemUtility(sc *Scenario, a *Assignment) float64 {
	return objective.New(sc).SystemUtility(a)
}

// Evaluate produces the full per-user report (delays, energies, rates,
// allocated CPU, utilities) of decision a.
func Evaluate(sc *Scenario, a *Assignment) Report {
	return objective.New(sc).Evaluate(a)
}

// KKTAllocation returns the closed-form optimal resource allocation F* for
// decision a (Eq. 22).
func KKTAllocation(sc *Scenario, a *Assignment) Allocation {
	f, _ := alloc.KKT(sc, a)
	return f
}

// Verify checks that a scheduler result is feasible for sc.
func Verify(sc *Scenario, r Result) error { return solver.Verify(sc, r) }

// RunDynamic executes the multi-epoch online simulation: random-waypoint
// mobility, stochastic task arrivals, and TSAJS re-scheduling per epoch
// (warm-started when cfg.WarmStart is set).
func RunDynamic(cfg DynamicConfig) (*DynamicResult, error) { return dynamic.Run(cfg) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSolverMetrics returns a solve observer recording tsajs_solver_*
// metrics into r, labelled by scheme plus the given constant labels.
func NewSolverMetrics(r *MetricsRegistry, labels ...MetricLabel) *SolverMetrics {
	return obs.NewSolverMetrics(r, labels...)
}

// NewClientMetrics registers the tsajs_client_* resilience counters in r.
func NewClientMetrics(r *MetricsRegistry, labels ...MetricLabel) *ClientMetrics {
	return obs.NewClientMetrics(r, labels...)
}

// MetricsMux builds the introspection HTTP handler: /metrics (Prometheus
// text), /stats (the callback's value as JSON; the registry when nil),
// /healthz, and the net/http/pprof handlers under /debug/pprof/.
func MetricsMux(r *MetricsRegistry, stats func() any) *http.ServeMux {
	return obs.Mux(r, stats)
}

// ErrCoordinatorQueueFull is the failure reason carried by every response in
// an epoch batch that was flushed while the coordinator's solve queue was at
// capacity: the batch is shed immediately (fail-fast backpressure) instead of
// buffering unboundedly behind slow solves.
var ErrCoordinatorQueueFull = cran.ErrQueueFull

// ErrDeadlineExceeded is returned for a request whose epoch deadline passed
// while it waited in the solve queue: the coordinator drops it at dequeue
// instead of spending solver time on a stale answer.
var ErrDeadlineExceeded = cran.ErrDeadlineExceeded

// ErrAdmissionRejected is returned when the coordinator's admission
// controller predicts the request cannot be answered within its deadline
// (estimated queue wait exceeds the deadline budget) and sheds it at the
// door.
var ErrAdmissionRejected = cran.ErrAdmissionRejected

// IsBackpressureCode reports whether a response code marks a load-shedding
// rejection (queue full, admission, deadline expiry) — the coordinator
// alive but overloaded — as opposed to a fault.
func IsBackpressureCode(code string) bool { return cran.IsBackpressureCode(code) }

// RunOverloadHarness executes the end-to-end chaos harness: it measures a
// coordinator's sustainable closed-loop rate, then drives a fault-injected
// coordinator at a multiple of that rate (default 2×) with a slow solver
// injected for part of the window, and verifies the overload-resilience
// invariants — every request answered exactly once, no deadline-expired
// full-quality solves, a goodput floor, and recovery after the fault
// window. Violations are listed in the report; an empty list is a pass.
func RunOverloadHarness(cfg OverloadConfig) (OverloadReport, error) { return chaos.Run(cfg) }

// NewCoordinator starts a C-RAN scheduling coordinator listening on addr.
// The coordinator pipelines its serving path: a collector goroutine batches
// requests into epochs and stamps each epoch's number and RNG streams at
// enqueue time, and CoordinatorConfig.Workers solver goroutines drain the
// bounded solve queue — per-epoch results are bit-identical for every worker
// count.
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	return cran.NewServer(addr, cfg)
}

// Coordinator wire protocols, for ResilienceConfig.Protocol: the
// newline-delimited JSON of the original coordinator, and the wirev2
// framed binary protocol that multiplexes many in-flight requests over one
// connection. A coordinator serves both on the same port, negotiated on
// each connection's first bytes.
const (
	CoordinatorProtocolJSON   = cran.ProtoJSON
	CoordinatorProtocolBinary = cran.ProtoBinary
)

// ErrUnsupportedVersion is the typed rejection of an envelope or binary
// handshake carrying a protocol version the coordinator does not speak.
var ErrUnsupportedVersion = cran.ErrUnsupportedVersion

// DialCoordinatorBinary connects a device-side client to a coordinator
// over the wirev2 binary protocol, with DialCoordinator's strict
// semantics. Concurrent Offload calls multiplex over the one connection,
// each under its own 64-bit request ID, so a single client can hold many
// requests in flight across scheduling epochs.
func DialCoordinatorBinary(addr string) (*CoordinatorClient, error) { return cran.DialBinary(addr) }

// DialCoordinator connects a device-side client to a coordinator. The
// returned client is strict: it fails fast when the coordinator is
// unreachable and surfaces every transport error. Use
// DialCoordinatorResilient for the fault-tolerant client.
func DialCoordinator(addr string) (*CoordinatorClient, error) { return cran.Dial(addr) }

// DialCoordinatorResilient returns a device-side client with the full
// fault-tolerance stack on: retries with jittered exponential backoff,
// automatic reconnection, a circuit breaker, and graceful degradation —
// when the coordinator cannot answer, Offload returns a valid
// local-execution decision (Eq. 1 cost, Degraded=true) instead of an
// error. Constructing the client never requires the coordinator to be up.
func DialCoordinatorResilient(addr string, rc ResilienceConfig) (*CoordinatorClient, error) {
	return cran.DialResilient(addr, rc)
}

// GenerateFaultPlan draws a deterministic failure schedule: each edge
// server follows a two-state Markov chain (up→down with cfg.ServerFailProb,
// down→up with cfg.ServerRecoverProb), and the coordinator gets its own
// unavailability windows. The same cfg, sizes and rng seed always produce
// the same plan.
func GenerateFaultPlan(cfg FaultConfig, servers, epochs int, rng *Rand) (*FaultPlan, error) {
	return faults.Generate(cfg, servers, epochs, rng)
}

// SummarizeTrace condenses a traced TTSA run for convergence analysis.
func SummarizeTrace(trace []TracePoint) (TraceSummary, error) {
	return analysis.Summarize(trace)
}

// CompareTraces reports how much faster trace a reaches the weaker of the
// two final utilities than trace b.
func CompareTraces(a, b []TracePoint) (TraceComparison, error) {
	return analysis.Compare(a, b)
}

// Figures lists the reproducible paper experiment identifiers
// ("fig3".."fig9").
func Figures() []string { return experiment.Figures() }

// Ablations lists the design-choice experiments beyond the paper's
// figures ("abl-cooling", "abl-moves", "abl-eviction", "abl-multistart").
func Ablations() []string { return experiment.Ablations() }

// RunAblation executes one ablation experiment.
func RunAblation(id string, opts ExperimentOptions) ([]FigureTable, error) {
	return experiment.RunAblation(id, opts)
}

// RunFigure reproduces one paper figure, returning one table per panel.
func RunFigure(figure string, opts ExperimentOptions) ([]FigureTable, error) {
	return experiment.Run(figure, opts)
}

// ErrWrongShard is the typed rejection of a request routed to a coordinator
// shard that does not own the request's cell (a stale assignment table or a
// mis-configured client). It is a fault, not backpressure: retrying the same
// shard is hopeless, so clients must re-resolve their routing instead.
var ErrWrongShard = cran.ErrWrongShard

// DefaultShardReplicas is the consistent-hash ring's default vnode count
// per shard.
const DefaultShardReplicas = shard.DefaultReplicas

// CellSites returns the hexagonal cell site layout the coordinator derives
// from params — the layout a ShardClient must be given so client-side
// routing agrees with every shard's own cell resolution.
func CellSites(params Params) []Point {
	return geom.HexLayout(params.NumServers, params.InterSiteKm)
}

// NewShardRing builds the consistent-hash ring for a K-shard cluster;
// replicas <= 0 selects DefaultShardReplicas. Rings are deterministic: two
// processes building one with the same parameters agree on every cell's
// owner, and growing a cluster K→K+1 moves cells only to the new shard.
func NewShardRing(shards, replicas int) (*ShardRing, error) {
	return shard.NewRing(shards, replicas)
}

// ShardOwned lists the cells one shard owns under an assignment table, in
// ascending cell order — the coordinator-side complement of a ring's
// Assignment.
func ShardOwned(assignment []int, index int) []int {
	return shard.Owned(assignment, index)
}

// NewShardClient returns a shard-aware client for a coordinator cluster:
// requests are routed by the cell nearest their position to the shard owning
// that cell, over per-shard resilient connections.
func NewShardClient(cfg ShardClientConfig) (*ShardClient, error) {
	return shard.NewClient(cfg)
}

// NewShardRouter starts a router listening on addr that fans a plain JSON
// client's requests out across the shard cluster described by cfg.Client.
func NewShardRouter(addr string, cfg ShardRouterConfig) (*ShardRouter, error) {
	return shard.NewRouter(addr, cfg)
}

// RunSpec executes a custom sweep from a declarative JSON specification
// (see internal/spec for the format): pick a swept parameter, its values,
// the schemes, the metric and the trial count.
func RunSpec(blob []byte) (FigureTable, error) {
	sp, err := spec.Parse(blob)
	if err != nil {
		return FigureTable{}, err
	}
	return sp.Run()
}
