package tsajs_test

import (
	"fmt"

	"github.com/tsajs/tsajs"
)

// ExampleBuild constructs the paper's default scenario and inspects its
// shape.
func ExampleBuild() {
	params := tsajs.DefaultParams()
	params.NumUsers = 12
	params.Seed = 7
	sc, err := tsajs.Build(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("users=%d servers=%d subchannels=%d\n", sc.U(), sc.S(), sc.N())
	fmt.Printf("subchannel width=%.2f MHz\n", sc.SubchannelHz()/1e6)
	// Output:
	// users=12 servers=9 subchannels=3
	// subchannel width=6.67 MHz
}

// ExampleNewScheduler runs TSAJS on a small instance and verifies the
// decision's feasibility.
func ExampleNewScheduler() {
	params := tsajs.DefaultParams()
	params.NumUsers = 10
	params.Workload.WorkCycles = 3000e6
	params.Seed = 42
	sc, err := tsajs.Build(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := tsajs.NewScheduler().Schedule(sc, tsajs.NewRand(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("feasible:", tsajs.Verify(sc, res) == nil)
	fmt.Println("positive utility:", res.Utility > 0)
	fmt.Println("someone offloaded:", res.Assignment.Offloaded() > 0)
	// Output:
	// feasible: true
	// positive utility: true
	// someone offloaded: true
}

// ExampleSystemUtility evaluates decisions by hand: the empty (all-local)
// decision is the zero of the utility scale.
func ExampleSystemUtility() {
	params := tsajs.DefaultParams()
	params.NumUsers = 4
	params.Seed = 3
	sc, err := tsajs.Build(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, err := tsajs.NewAssignment(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("all-local utility:", tsajs.SystemUtility(sc, a))
	// Output:
	// all-local utility: 0
}

// ExampleEvaluate shows the per-user report of a decision.
func ExampleEvaluate() {
	params := tsajs.DefaultParams()
	params.NumUsers = 3
	params.Seed = 5
	sc, err := tsajs.Build(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, err := tsajs.NewAssignment(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := a.Offload(0, 0, 0); err != nil {
		fmt.Println("error:", err)
		return
	}
	rep := tsajs.Evaluate(sc, a)
	fmt.Println("users in report:", len(rep.Users))
	fmt.Println("user 0 offloaded:", rep.Users[0].Offloaded)
	fmt.Println("user 1 offloaded:", rep.Users[1].Offloaded)
	// The lone offloader gets the entire 20 GHz server.
	fmt.Printf("user 0 CPU grant: %.0f GHz\n", rep.Users[0].FUsHz/1e9)
	// Output:
	// users in report: 3
	// user 0 offloaded: true
	// user 1 offloaded: false
	// user 0 CPU grant: 20 GHz
}

// ExampleKKTAllocation shows the closed-form resource split of Eq. (22):
// homogeneous users sharing a server split its capacity evenly.
func ExampleKKTAllocation() {
	params := tsajs.DefaultParams()
	params.NumUsers = 2
	params.Seed = 9
	sc, err := tsajs.Build(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, err := tsajs.NewAssignment(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_ = a.Offload(0, 0, 0)
	_ = a.Offload(1, 0, 1)
	f := tsajs.KKTAllocation(sc, a)
	fmt.Printf("user 0: %.0f GHz, user 1: %.0f GHz\n", f.FUs[0]/1e9, f.FUs[1]/1e9)
	// Output:
	// user 0: 10 GHz, user 1: 10 GHz
}

// ExampleRunSpec runs a declarative custom sweep.
func ExampleRunSpec() {
	table, err := tsajs.RunSpec([]byte(`{
		"title": "quick demo",
		"sweep": "users",
		"values": [4, 8],
		"schemes": ["greedy"],
		"trials": 2,
		"base": {"servers": 3, "channels": 2}
	}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("title:", table.Title)
	fmt.Println("points:", len(table.X))
	fmt.Println("series:", table.Series[0].Scheme)
	// Output:
	// title: quick demo
	// points: 2
	// series: Greedy
}
